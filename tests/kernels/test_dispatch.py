"""Backend-selection semantics of :mod:`repro.kernels`.

The dispatch precedence is explicit argument > set_backend/use_backend >
``REPRO_KERNELS`` > default; every layer is exercised here, plus the
observability counters each entry point must emit.
"""

import numpy as np
import pytest

from repro import kernels, obs
from repro.codecs.huffman import STD_AC_LUMA, STD_DC_LUMA


@pytest.fixture(autouse=True)
def _clear_override():
    """Each test starts (and ends) with no process-local override."""
    kernels.set_backend(None)
    yield
    kernels.set_backend(None)


def test_default_backend(monkeypatch):
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    assert kernels.current_backend() == kernels.DEFAULT_BACKEND == "fast"


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "reference")
    assert kernels.current_backend() == "reference"


def test_env_var_invalid_name_raises(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "simd")
    with pytest.raises(ValueError, match="unknown kernels backend"):
        kernels.current_backend()


def test_set_backend_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "fast")
    kernels.set_backend("reference")
    assert kernels.current_backend() == "reference"
    kernels.set_backend(None)
    assert kernels.current_backend() == "fast"


def test_set_backend_rejects_unknown():
    with pytest.raises(ValueError, match="unknown kernels backend"):
        kernels.set_backend("gpu")


def test_explicit_argument_wins(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "fast")
    kernels.set_backend("fast")
    assert kernels.resolve_backend("reference") == "reference"


def test_use_backend_nests_and_restores(monkeypatch):
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    assert kernels.current_backend() == "fast"
    with kernels.use_backend("reference"):
        assert kernels.current_backend() == "reference"
        with kernels.use_backend("fast"):
            assert kernels.current_backend() == "fast"
        assert kernels.current_backend() == "reference"
    assert kernels.current_backend() == "fast"


def test_use_backend_restores_on_error(monkeypatch):
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    with pytest.raises(RuntimeError):
        with kernels.use_backend("reference"):
            raise RuntimeError("boom")
    assert kernels.current_backend() == "fast"


def test_available_backends():
    assert kernels.available_backends() == ("reference", "fast")


def test_entry_points_emit_backend_counters():
    blocks = np.zeros((4, 64), dtype=np.int64)
    comp, block = kernels.scan_layout(2, 2, ((1, 1),))
    with obs.observed() as ob:
        kernels.encode_jpeg_scan(
            [blocks], comp, block, (STD_DC_LUMA,), (STD_AC_LUMA,), backend="reference"
        )
        kernels.entropy_deflate(b"abc", 6, backend="fast")
    metrics = ob.metrics
    assert metrics.counter_value("kernels.backend.reference") == 1
    assert metrics.counter_value("kernels.backend.fast") == 1
    assert metrics.counter_value("kernels.jpeg.units_encoded") == 4
    assert metrics.counter_value("kernels.jpeg.bytes_encoded") > 0
    assert metrics.counter_value("kernels.deflate.bytes_in") == 3
