"""Smoke tests for the ``python -m repro bench`` harness."""

import json

from repro.bench import format_report, run_bench, write_report
from repro.bench.cases import build_cases


def test_case_names_unique_and_stable():
    names = [c.name for c in build_cases(quick=True)]
    assert len(names) == len(set(names))
    assert "entropy_encode" in names
    assert "jpeg_encode_128" in names


def test_run_bench_quick_subset(tmp_path):
    report = run_bench(quick=True, repeats=1, only=["entropy_encode", "dct"])
    assert report["quick"] is True
    assert sorted(report["cases"]) == ["dct", "entropy_encode"]

    entropy = report["cases"]["entropy_encode"]
    assert set(entropy["backends"]) == {"reference", "fast"}
    for stats in entropy["backends"].values():
        assert stats["seconds"] > 0
        assert stats["ops_per_s"] > 0
    assert entropy["speedup_fast_vs_reference"] > 0

    dct = report["cases"]["dct"]
    assert list(dct["backends"]) == ["default"]  # not dispatched

    text = format_report(report)
    assert "entropy_encode" in text and "speedup" in text

    out = tmp_path / "bench.json"
    write_report(report, str(out))
    assert json.loads(out.read_text())["cases"].keys() == report["cases"].keys()


def test_unknown_case_rejected():
    import pytest

    with pytest.raises(ValueError, match="unknown bench case"):
        run_bench(quick=True, repeats=1, only=["warp_drive"])
