"""Golden byte-hash regression for every codec, under both backends.

A fixed seeded image is encoded with each codec; the SHA-256 of the
byte stream is pinned in ``tests/data/golden_codecs.json``. This is the
tripwire for silent encode drift: a vectorization changing one bit of
output fails here before it can shift the paper's reproduced numbers
(capture hashes feed the instability analysis directly).

Regenerate intentionally with::

    PYTHONPATH=src python -m pytest tests/kernels/test_golden.py --regen-golden
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro import kernels
from repro.codecs.heif import encode_heif
from repro.codecs.jpeg import encode_jpeg
from repro.codecs.png import encode_png
from repro.codecs.webp import encode_webp
from repro.imaging.image import ImageBuffer

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "golden_codecs.json"


def _test_image() -> ImageBuffer:
    """A deterministic 48x40 image with gradients, noise, and flat runs."""
    rng = np.random.default_rng(2024)
    base = np.add.outer(np.arange(48) * 2, np.arange(40) * 3)[..., None]
    rgb = base + rng.integers(0, 32, size=(48, 40, 3))
    rgb[10:20, 10:20] = 128  # flat patch: zero-run / EOB heavy
    return ImageBuffer.from_uint8((rgb % 256).astype(np.uint8))


def _encodings() -> dict:
    image = _test_image()
    return {
        "jpeg_q85_420": encode_jpeg(image, quality=85, subsampling="4:2:0"),
        "jpeg_q30_444": encode_jpeg(image, quality=30, subsampling="4:4:4"),
        "png": encode_png(image),
        "webp_q75": encode_webp(image, quality=75),
        "heif_q80": encode_heif(image, quality=80),
    }


def test_backends_agree_per_codec():
    with kernels.use_backend("reference"):
        ref = _encodings()
    with kernels.use_backend("fast"):
        fast = _encodings()
    for name in ref:
        assert ref[name] == fast[name], f"{name}: backends diverge"


def test_golden_codec_hashes(regen_golden):
    digests = {
        name: hashlib.sha256(data).hexdigest()
        for name, data in sorted(_encodings().items())
    }
    if regen_golden:
        GOLDEN_PATH.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
        pytest.skip("golden codec hashes regenerated")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert digests == golden
