"""Cross-package integration tests: the full chain, end to end.

These verify that the composition scene -> screen -> sensor -> ISP ->
codec -> OS decode -> model behaves as one deterministic system, and
that the properties the experiments rely on hold across module
boundaries.
"""

import numpy as np
import pytest

from repro.codecs import decode_any, decode_dng, get_codec, sniff_format
from repro.devices import DeviceRuntime, Phone, capture_fleet
from repro.imaging.metrics import pixel_diff_map, psnr
from repro.isp import build_isp
from repro.scenes import Screen, build_dataset
from repro.nn.preprocess import to_model_input


@pytest.fixture(scope="module")
def radiance():
    ds = build_dataset(per_class=1, seed=0)
    return Screen(seed=1).display(ds[0].scene.render(96, 96))


class TestFullChainDeterminism:
    def test_capture_to_prediction_reproducible(self, radiance, tiny_model):
        """Same seed -> byte-identical file -> identical prediction."""
        phone = Phone(capture_fleet()[0])
        runtime = DeviceRuntime(tiny_model)
        outputs = []
        for _ in range(2):
            data = phone.photograph(radiance, np.random.default_rng(123))
            pred = runtime.predict_one(decode_any(data))
            outputs.append((data, pred.probabilities))
        assert outputs[0][0] == outputs[1][0]
        assert outputs[0][1] == outputs[1][1]

    def test_all_phones_full_path(self, radiance, tiny_model):
        """Every fleet phone's default path runs end to end."""
        runtime = DeviceRuntime(tiny_model)
        for profile in capture_fleet():
            phone = Phone(profile)
            data = phone.photograph(radiance, np.random.default_rng(0))
            assert sniff_format(data) == profile.save_format
            pred = runtime.predict_one(decode_any(data))
            assert len(pred.ranking) == 8


class TestCrossDeviceDivergenceIsSmallButReal:
    def test_photos_close_in_pixel_space(self, radiance):
        """Different phones' photos of the same display are *nearly*
        identical — the premise of the instability metric."""
        photos = []
        for profile in capture_fleet():
            phone = Phone(profile)
            data = phone.photograph(radiance, np.random.default_rng(1))
            photos.append(decode_any(data).pixels)
        for i in range(1, len(photos)):
            assert psnr(photos[0], photos[i]) > 15.0
            assert not np.array_equal(photos[0], photos[i])

    def test_repeat_shot_pixel_difference_is_tiny(self, radiance):
        """Fig. 1's right panel: repeat shots differ on few pixels."""
        phone = Phone(capture_fleet()[0])
        rng = np.random.default_rng(2)
        a = decode_any(phone.photograph(radiance, rng))
        b = decode_any(phone.photograph(radiance, rng))
        stats = pixel_diff_map(a.pixels, b.pixels, threshold=0.05)
        assert stats.divergent_fraction < 0.10


class TestRawPathConsistency:
    def test_raw_conversion_removes_isp_and_codec_variance(self, radiance):
        """§9.2's premise: raws from different phones, converted by one
        ISP, are closer than the phones' own JPEGs."""
        isp = build_isp("imagemagick")
        jpeg_photos = []
        raw_converted = []
        for profile in (p for p in capture_fleet() if p.supports_raw):
            phone = Phone(profile)
            rng = np.random.default_rng(3)
            raw = phone.capture_raw(radiance, rng)
            jpeg = get_codec("jpeg").encode(phone.develop(raw), quality=90)
            jpeg_photos.append(decode_any(jpeg).pixels)
            raw_converted.append(isp.process(raw).pixels)
        jpeg_gap = np.abs(jpeg_photos[0] - jpeg_photos[1]).mean()
        raw_gap = np.abs(raw_converted[0] - raw_converted[1]).mean()
        assert raw_gap < jpeg_gap

    def test_dng_file_roundtrip_through_phone(self, radiance):
        phone = Phone(next(p for p in capture_fleet() if p.supports_raw))
        dng = phone.photograph_raw(radiance, np.random.default_rng(4))
        raw = decode_dng(dng)
        developed = build_isp("imagemagick").process(raw)
        assert developed.shape == (96, 96, 3)


class TestModelInputPathUniformity:
    def test_preprocessing_identical_for_all_sources(self, radiance):
        """The model-input path must not depend on where pixels came from
        (the §7 lesson: keep everything outside the test identical)."""
        a = to_model_input(radiance)
        b = to_model_input(radiance.copy())
        assert np.array_equal(a, b)
