"""Shared fixtures.

Tests never call :func:`repro.nn.load_pretrained` (it would train for
minutes on a cache miss); model-dependent tests use a tiny random or
briefly-trained model instead.
"""

import numpy as np
import pytest

from repro.core.records import ExperimentResult, PredictionRecord
from repro.nn.model import micro_mobilenet


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite golden regression files (tests/data/) instead of comparing",
    )


@pytest.fixture
def regen_golden(request):
    """True when the run should rewrite golden files rather than assert."""
    return request.config.getoption("--regen-golden")


@pytest.fixture(scope="session")
def tiny_model():
    """An untrained MicroMobileNet (weights random but deterministic)."""
    return micro_mobilenet(num_classes=8, seed=123)


def make_record(
    environment="phone_a",
    image_id=0,
    true_label=0,
    predicted_label=0,
    confidence=0.9,
    class_name="water_bottle",
    ranking=None,
    angle=None,
    **metadata,
):
    """Concise PredictionRecord builder for metric tests."""
    if ranking is None:
        others = [c for c in range(8) if c != predicted_label]
        ranking = tuple([predicted_label] + others)
    return PredictionRecord(
        environment=environment,
        image_id=image_id,
        true_label=true_label,
        predicted_label=predicted_label,
        confidence=confidence,
        class_name=class_name,
        ranking=ranking,
        angle=angle,
        metadata=metadata,
    )


@pytest.fixture
def record_factory():
    return make_record


@pytest.fixture
def two_env_result():
    """A small result with known stability structure.

    Images: 0 stable-correct, 1 stable-incorrect, 2 unstable,
    3 seen by one environment only (excluded from instability).
    """
    records = [
        make_record("a", 0, 1, 1, 0.9),
        make_record("b", 0, 1, 1, 0.8),
        make_record("a", 1, 1, 2, 0.7),
        make_record("b", 1, 1, 3, 0.6),
        make_record("a", 2, 1, 1, 0.55),
        make_record("b", 2, 1, 4, 0.5),
        make_record("a", 3, 1, 1, 0.95),
    ]
    return ExperimentResult(records, name="fixture")
