"""Docs stay truthful: file references resolve, CLI examples parse.

Two failure modes this guards against:

* a doc names a file (``ARCHITECTURE.md``, ``tests/runner/test_determinism.py``,
  a benchmark script) that was renamed or removed;
* a doc quotes a ``python -m repro ...`` command whose flags drifted out
  of sync with the real argparse tree in :mod:`repro.__main__`.

Run standalone (the CI ``docs`` job) or as part of tier-1.
"""

import re
import shlex
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Docs whose quoted CLI commands must parse.
CLI_DOCS = ("README.md", "EXPERIMENTS.md", "ARCHITECTURE.md", "SERVING.md")

#: Docs whose links/file references must resolve.
LINK_DOCS = CLI_DOCS + ("DESIGN.md", "ROADMAP.md")

_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_BACKTICK = re.compile(r"`([^`]+)`")


def _doc_paths(names):
    return [REPO_ROOT / name for name in names if (REPO_ROOT / name).is_file()]


def _is_file_reference(text):
    """Backtick contents that promise a file exists in the repo.

    Bare ``NAME.md`` and slash-containing ``*.py``/``*.md`` paths count;
    dotted module paths, globs, and ``<placeholder>`` templates do not.
    """
    if " " in text or any(ch in text for ch in "<>*{}$"):
        return False
    if text.endswith(".md") and "/" not in text:
        return True
    return "/" in text and text.endswith((".py", ".md"))


class TestFileReferencesResolve:
    @pytest.mark.parametrize("doc", _doc_paths(LINK_DOCS), ids=lambda p: p.name)
    def test_markdown_links_resolve(self, doc):
        text = doc.read_text()
        broken = []
        for target in _MD_LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (doc.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"{doc.name}: broken links {broken}"

    @pytest.mark.parametrize("doc", _doc_paths(LINK_DOCS), ids=lambda p: p.name)
    def test_backtick_file_references_resolve(self, doc):
        text = doc.read_text()
        missing = []
        for ref in _BACKTICK.findall(text):
            if _is_file_reference(ref) and not (REPO_ROOT / ref).exists():
                missing.append(ref)
        assert not missing, f"{doc.name}: references missing files {missing}"


def _fenced_blocks(text):
    """Yield the contents of every ``` fenced code block."""
    for match in re.finditer(r"```[^\n]*\n(.*?)```", text, flags=re.DOTALL):
        yield match.group(1)


def _repro_commands(doc: Path):
    """Every `python -m repro ...` command quoted in the doc's code blocks."""
    commands = []
    for block in _fenced_blocks(doc.read_text()):
        # Re-join backslash line continuations before parsing.
        joined = re.sub(r"\\\n\s*", " ", block)
        for line in joined.splitlines():
            line = line.split("#", 1)[0].strip()
            if line.startswith("python -m repro"):
                commands.append(line)
    return commands


def _all_doc_commands():
    params = []
    for doc in _doc_paths(CLI_DOCS):
        for command in _repro_commands(doc):
            params.append(pytest.param(command, id=f"{doc.name}:{command[16:50]}"))
    return params


class TestCliExamplesParse:
    def test_docs_actually_quote_commands(self):
        """Guard the extractor itself: the docs do contain CLI examples."""
        assert len(_all_doc_commands()) >= 5

    def test_docs_quote_the_lint_gate(self):
        """The lint gate is documented: at least one quoted
        ``python -m repro lint`` command (README and/or ARCHITECTURE),
        each of which the parametrized test below also parses."""
        lint_commands = [
            param.values[0]
            for param in _all_doc_commands()
            if param.values[0].startswith("python -m repro lint")
        ]
        assert lint_commands, "no doc quotes `python -m repro lint`"

    def test_serving_runbook_covers_both_entry_points(self):
        """SERVING.md exists and quotes both halves of the serving
        surface — a ``python -m repro serve`` and a ``python -m repro
        loadgen`` command (each also parse-checked below)."""
        doc = REPO_ROOT / "SERVING.md"
        assert doc.is_file(), "SERVING.md missing"
        commands = _repro_commands(doc)
        assert any(c.startswith("python -m repro serve") for c in commands), (
            "SERVING.md quotes no `python -m repro serve` command"
        )
        assert any(c.startswith("python -m repro loadgen") for c in commands), (
            "SERVING.md quotes no `python -m repro loadgen` command"
        )

    def test_architecture_quotes_list_rules_output_verbatim(self):
        """ARCHITECTURE.md quotes the ``--list-rules`` output; the quoted
        block must match the live registry line for line, so the docs
        can never advertise a rule set the linter does not enforce."""
        from repro.lint import all_rules

        text = (REPO_ROOT / "ARCHITECTURE.md").read_text()
        block = next(
            (
                b for b in _fenced_blocks(text)
                if b.lstrip().startswith("$ python -m repro lint --list-rules")
            ),
            None,
        )
        assert block is not None, (
            "ARCHITECTURE.md no longer quotes `--list-rules` output"
        )
        quoted = [line for line in block.splitlines()[1:] if line.strip()]
        expected = [
            f"{rule.name}  [{rule.severity}]  {rule.summary}"
            for rule in all_rules()
        ]
        assert quoted == expected, (
            "quoted --list-rules block is out of date; re-run "
            "`python -m repro lint --list-rules` and paste the output"
        )

    @pytest.mark.parametrize("command", _all_doc_commands())
    def test_command_parses(self, command):
        from repro.__main__ import build_parser

        argv = shlex.split(command)
        assert argv[:3] == ["python", "-m", "repro"], command
        parser = build_parser()
        try:
            args = parser.parse_args(argv[3:])
        except SystemExit as exc:  # argparse rejected the example
            pytest.fail(f"doc command does not parse: {command!r} ({exc})")
        assert hasattr(args, "func"), command
