"""Tests for device profiles, phones, OS decoders, and runtimes."""

import numpy as np
import pytest

from repro.codecs import sniff_format
from repro.devices import (
    DECODER_FAMILIES,
    DeviceRuntime,
    Phone,
    capture_fleet,
    content_hash,
    firebase_fleet,
)
from repro.imaging import ImageBuffer


@pytest.fixture(scope="module")
def radiance():
    rng = np.random.default_rng(0)
    from scipy import ndimage

    img = ndimage.gaussian_filter(rng.random((96, 96, 3)), (4, 4, 0))
    img = (img - img.min()) / (img.max() - img.min())
    return ImageBuffer(img.astype(np.float32))


class TestFleets:
    def test_capture_fleet_matches_table1(self):
        fleet = capture_fleet()
        assert len(fleet) == 5
        names = {p.name for p in fleet}
        assert "samsung_galaxy_s10" in names and "iphone_xr" in names
        codes = {p.model_code for p in fleet}
        assert {"SM-G973U1", "K425", "XT1670", "A1984"} <= codes

    def test_raw_support_matches_paper(self):
        """Only the Galaxy S10 and iPhone XR shot raw in the paper."""
        raw_capable = {p.name for p in capture_fleet() if p.supports_raw}
        assert raw_capable == {"samsung_galaxy_s10", "iphone_xr"}

    def test_firebase_fleet_matches_table5(self):
        fleet = firebase_fleet()
        assert len(fleet) == 5
        socs = {p.soc for p in fleet}
        assert any("KIRIN" in s for s in socs)
        vendor_decoder = {
            p.name for p in fleet if p.os_decoder.name == "vendor_neon"
        }
        assert vendor_decoder == {"huawei_mate_rs", "xiaomi_mi_8_pro"}

    def test_iphone_saves_heif(self):
        iphone = next(p for p in capture_fleet() if p.name == "iphone_xr")
        assert iphone.save_format == "heif"


class TestPhone:
    def test_photograph_produces_vendor_format(self, radiance):
        rng = np.random.default_rng(0)
        for profile in capture_fleet():
            data = Phone(profile).photograph(radiance, rng)
            assert sniff_format(data) == profile.save_format

    def test_format_override(self, radiance):
        iphone = Phone(next(p for p in capture_fleet() if p.name == "iphone_xr"))
        data = iphone.photograph(radiance, np.random.default_rng(0), format_override="jpeg")
        assert sniff_format(data) == "jpeg"

    def test_raw_path_gated(self, radiance):
        lg = Phone(next(p for p in capture_fleet() if p.name == "lg_k10_lte"))
        with pytest.raises(RuntimeError, match="raw"):
            lg.photograph_raw(radiance, np.random.default_rng(0))

    def test_raw_roundtrip(self, radiance):
        from repro.codecs import decode_dng

        s10 = Phone(next(p for p in capture_fleet() if p.supports_raw))
        data = s10.photograph_raw(radiance, np.random.default_rng(0))
        raw = decode_dng(data)
        assert raw.mosaic.shape == (96, 96)

    def test_repeat_photographs_differ(self, radiance):
        """Fig. 1: back-to-back shots are nearly but not exactly equal."""
        phone = Phone(capture_fleet()[0])
        rng = np.random.default_rng(0)
        a = phone.photograph(radiance, rng)
        b = phone.photograph(radiance, rng)
        assert a != b

    def test_same_rng_reproduces_capture(self, radiance):
        phone = Phone(capture_fleet()[0])
        a = phone.photograph(radiance, np.random.default_rng(42))
        b = phone.photograph(radiance, np.random.default_rng(42))
        assert a == b

    def test_different_phones_different_photos(self, radiance):
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        fleet = capture_fleet()
        a = Phone(fleet[0]).photograph(radiance, rng_a)
        b = Phone(fleet[2]).photograph(radiance, rng_b)
        assert a != b


class TestOSDecoders:
    def _jpeg(self, radiance):
        from repro.codecs import encode_jpeg

        return encode_jpeg(radiance, quality=85)

    def test_families_decode_same_png_identically(self, radiance):
        from repro.codecs import encode_png

        data = encode_png(radiance)
        imgs = [fam.load(data) for fam in DECODER_FAMILIES.values()]
        assert content_hash(imgs[0]) == content_hash(imgs[1])

    def test_families_decode_jpeg_differently(self, radiance):
        """The §7 mechanism: same bytes, two pixel-buffer hash camps."""
        data = self._jpeg(radiance)
        mainline = DECODER_FAMILIES["mainline"].load(data)
        vendor = DECODER_FAMILIES["vendor_neon"].load(data)
        assert content_hash(mainline) != content_hash(vendor)
        # The difference is tiny — a couple of code values at most.
        diff = np.abs(
            mainline.to_uint8().astype(int) - vendor.to_uint8().astype(int)
        )
        assert diff.max() <= 4

    def test_loader_rejects_unsupported_format(self):
        with pytest.raises(ValueError):
            DECODER_FAMILIES["mainline"].load(b"RPDN" + b"\x00" * 20)

    def test_decode_is_deterministic(self, radiance):
        data = self._jpeg(radiance)
        fam = DECODER_FAMILIES["vendor_neon"]
        assert content_hash(fam.load(data)) == content_hash(fam.load(data))


class TestRuntime:
    def test_prediction_structure(self, tiny_model, radiance):
        runtime = DeviceRuntime(tiny_model)
        pred = runtime.predict_one(radiance)
        assert len(pred.ranking) == 8
        assert pred.top1 == pred.ranking[0]
        assert sum(pred.probabilities) == pytest.approx(1.0, abs=1e-5)
        assert pred.confidence == max(pred.probabilities)
        assert pred.topk(3) == pred.ranking[:3]

    def test_deterministic_across_calls(self, tiny_model, radiance):
        runtime = DeviceRuntime(tiny_model)
        a = runtime.predict_one(radiance)
        b = runtime.predict_one(radiance)
        assert a.probabilities == b.probabilities

    def test_float16_mode_differs_slightly(self, tiny_model, radiance):
        full = DeviceRuntime(tiny_model, numerics="float32").predict_one(radiance)
        half = DeviceRuntime(tiny_model, numerics="float16").predict_one(radiance)
        assert np.allclose(full.probabilities, half.probabilities, atol=0.05)

    def test_rejects_unknown_numerics(self, tiny_model):
        with pytest.raises(ValueError):
            DeviceRuntime(tiny_model, numerics="bfloat16")
