"""Tests for the secondary analyses (angle, within-env, confidence)."""

import numpy as np
import pytest

from repro.core.analysis import (
    confidence_analysis,
    per_angle_instability,
    within_environment_instability,
)
from repro.core.records import ExperimentResult
from tests.conftest import make_record


class TestPerAngle:
    def test_split_by_angle(self):
        records = [
            # angle 0: unstable
            make_record("a", 0, 1, 1, angle=0.0),
            make_record("b", 0, 1, 2, angle=0.0),
            # angle 15: stable
            make_record("a", 1, 1, 1, angle=15.0),
            make_record("b", 1, 1, 1, angle=15.0),
        ]
        out = per_angle_instability(ExperimentResult(records))
        assert out[0.0] == 1.0
        assert out[15.0] == 0.0

    def test_requires_angles(self):
        records = [make_record("a", 0), make_record("b", 0)]
        with pytest.raises(ValueError):
            per_angle_instability(ExperimentResult(records))


class TestWithinEnvironment:
    def test_repeat_flips_within_one_phone(self):
        # Same phone, same object, two angles: one correct, one not.
        records = [
            make_record("a", 0, 1, 1, angle=0.0, object_key=7),
            make_record("a", 1, 1, 2, angle=15.0, object_key=7),
            make_record("b", 2, 1, 1, angle=0.0, object_key=7),
            make_record("b", 3, 1, 1, angle=15.0, object_key=7),
        ]
        out = within_environment_instability(ExperimentResult(records))
        assert out["a"] == 1.0
        assert out["b"] == 0.0


class TestConfidenceAnalysis:
    def test_groups_are_partitioned(self, two_env_result):
        split = confidence_analysis(two_env_result)
        total = (
            split.stable_correct.size
            + split.stable_incorrect.size
            + split.unstable_correct.size
            + split.unstable_incorrect.size
        )
        # Image 3 (single-env) is excluded.
        assert total == 6

    def test_unstable_sides(self, two_env_result):
        split = confidence_analysis(two_env_result)
        # Image 2: correct side has conf 0.55, incorrect 0.5.
        assert split.unstable_correct.tolist() == [pytest.approx(0.55)]
        assert split.unstable_incorrect.tolist() == [pytest.approx(0.5)]

    def test_summary_handles_empty_groups(self):
        records = [
            make_record("a", 0, 1, 1, 0.9),
            make_record("b", 0, 1, 1, 0.8),
        ]
        split = confidence_analysis(ExperimentResult(records))
        summary = split.summary()
        assert summary["stable_correct"][0] == pytest.approx(0.85)
        assert np.isnan(summary["unstable_correct"][0])
