"""Tests for report formatting."""

import pytest

from repro.core.report import format_percent, format_series, format_table


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.0766) == "7.66%"

    def test_digits(self):
        assert format_percent(0.5, digits=0) == "50%"

    def test_zero(self):
        assert format_percent(0.0) == "0.00%"


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "val"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        # All rows equal width.
        assert len(set(len(l) for l in lines)) == 1

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out


def test_format_series_percent():
    out = format_series({"purse": 0.25})
    assert "purse: 25.00%" in out


def test_format_series_raw():
    out = format_series({"x": 0.5}, percent=False)
    assert "x: 0.5000" in out
