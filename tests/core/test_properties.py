"""Property-based tests for the metric layer's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instability import (
    accuracy,
    image_stability_breakdown,
    instability,
    unstable_image_ids,
)
from repro.core.records import ExperimentResult, PredictionRecord

N_CLASSES = 5


@st.composite
def results(draw, min_images=1, max_images=12, min_envs=2, max_envs=4):
    """Random experiment results with full rankings and 5 classes."""
    n_images = draw(st.integers(min_images, max_images))
    n_envs = draw(st.integers(min_envs, max_envs))
    records = []
    for image_id in range(n_images):
        true_label = draw(st.integers(0, N_CLASSES - 1))
        for env in range(n_envs):
            perm = draw(st.permutations(list(range(N_CLASSES))))
            records.append(
                PredictionRecord(
                    environment=f"env{env}",
                    image_id=image_id,
                    true_label=true_label,
                    predicted_label=perm[0],
                    confidence=draw(
                        st.floats(0.25, 1.0, allow_nan=False)
                    ),
                    class_name=f"class{true_label}",
                    ranking=tuple(perm),
                )
            )
    return ExperimentResult(records)


@given(results())
@settings(max_examples=60, deadline=None)
def test_breakdown_partitions_eligible_images(result):
    breakdown = image_stability_breakdown(result)
    all_ids = sorted(
        breakdown["stable_correct"]
        + breakdown["stable_incorrect"]
        + breakdown["unstable"]
    )
    eligible = sorted(
        image_id
        for image_id, records in result.by_image().items()
        if len({r.environment for r in records}) >= 2
    )
    assert all_ids == eligible
    # No id in two groups.
    assert len(all_ids) == len(set(all_ids))


@given(results())
@settings(max_examples=60, deadline=None)
def test_instability_consistent_with_unstable_ids(result):
    eligible = [
        image_id
        for image_id, records in result.by_image().items()
        if len({r.environment for r in records}) >= 2
    ]
    assert instability(result) == pytest.approx(
        len(unstable_image_ids(result)) / len(eligible)
    )


@given(results(), st.randoms())
@settings(max_examples=40, deadline=None)
def test_instability_invariant_under_record_order(result, rnd):
    shuffled = list(result.records)
    rnd.shuffle(shuffled)
    assert instability(ExperimentResult(shuffled)) == instability(result)


@given(results())
@settings(max_examples=40, deadline=None)
def test_duplicating_an_environment_changes_nothing(result):
    """A clone device that predicts identically adds no instability."""
    env = result.environments()[0]
    clones = [
        PredictionRecord(
            environment="clone-of-" + env,
            image_id=r.image_id,
            true_label=r.true_label,
            predicted_label=r.predicted_label,
            confidence=r.confidence,
            class_name=r.class_name,
            ranking=r.ranking,
        )
        for r in result.for_environment(env)
    ]
    extended = ExperimentResult(result.records + clones)
    assert instability(extended) == instability(result)


@given(results())
@settings(max_examples=40, deadline=None)
def test_accuracy_monotone_in_k(result):
    values = [accuracy(result, k=k) for k in range(1, N_CLASSES + 1)]
    assert all(b >= a for a, b in zip(values, values[1:]))
    assert values[-1] == 1.0  # true label is always somewhere in the ranking


@given(results())
@settings(max_examples=40, deadline=None)
def test_instability_bounded(result):
    value = instability(result)
    assert 0.0 <= value <= 1.0


@given(results())
@settings(max_examples=40, deadline=None)
def test_perfect_fleet_is_stable(result):
    """If every record is forced correct, instability is exactly zero."""
    fixed = [
        PredictionRecord(
            environment=r.environment,
            image_id=r.image_id,
            true_label=r.true_label,
            predicted_label=r.true_label,
            confidence=r.confidence,
            class_name=r.class_name,
            ranking=(r.true_label,)
            + tuple(c for c in range(N_CLASSES) if c != r.true_label),
        )
        for r in result.records
    ]
    assert instability(ExperimentResult(fixed)) == 0.0
