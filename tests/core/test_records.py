"""Tests for prediction records and result containers."""

import numpy as np
import pytest

from repro.core.records import ExperimentResult, PredictionRecord
from tests.conftest import make_record


class TestPredictionRecord:
    def test_top1_correct(self):
        r = make_record(true_label=2, predicted_label=2)
        assert r.is_correct()
        assert r.is_correct(k=1)

    def test_top1_incorrect(self):
        r = make_record(true_label=2, predicted_label=3)
        assert not r.is_correct()

    def test_topk_correct_beyond_top1(self):
        r = make_record(true_label=5, predicted_label=3, ranking=(3, 5, 0, 1, 2, 4, 6, 7))
        assert not r.is_correct(k=1)
        assert r.is_correct(k=2)
        assert r.is_correct(k=8)

    def test_topk_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            make_record().is_correct(k=0)

    def test_topk_requires_ranking(self):
        r = PredictionRecord(
            environment="a",
            image_id=0,
            true_label=0,
            predicted_label=0,
            confidence=0.5,
            class_name="x",
            ranking=(),
        )
        with pytest.raises(ValueError):
            r.is_correct(k=3)


class TestExperimentResult:
    def test_environments_preserve_insertion_order(self):
        result = ExperimentResult(
            [make_record("z"), make_record("a"), make_record("z")]
        )
        assert result.environments() == ["z", "a"]

    def test_for_environment_filters(self, two_env_result):
        sub = two_env_result.for_environment("a")
        assert len(sub) == 4
        assert all(r.environment == "a" for r in sub)

    def test_for_class_filters(self):
        result = ExperimentResult(
            [make_record(class_name="purse"), make_record(class_name="backpack")]
        )
        assert len(result.for_class("purse")) == 1

    def test_by_image_groups(self, two_env_result):
        groups = two_env_result.by_image()
        assert set(groups) == {0, 1, 2, 3}
        assert len(groups[0]) == 2
        assert len(groups[3]) == 1

    def test_confidences(self, two_env_result):
        confs = two_env_result.confidences()
        assert confs.shape == (7,)
        assert confs.max() == 0.95

    def test_filter(self, two_env_result):
        high = two_env_result.filter(lambda r: r.confidence > 0.7)
        assert len(high) == 3

    def test_merged_with(self):
        a = ExperimentResult([make_record("a")], name="first")
        b = ExperimentResult([make_record("b")])
        merged = a.merged_with(b)
        assert len(merged) == 2
        assert merged.name == "first"

    def test_extend(self):
        result = ExperimentResult([])
        result.extend([make_record(), make_record()])
        assert len(result) == 2
