"""Tests for precision-recall curves."""

import numpy as np
import pytest

from repro.core.pr_curves import (
    PRCurve,
    average_precision,
    micro_average_pr,
    precision_recall,
)
from repro.core.records import ExperimentResult
from tests.conftest import make_record


class TestMicroAverage:
    def test_perfect_classifier(self):
        proba = np.array([[0.9, 0.1], [0.1, 0.9]])
        labels = np.array([0, 1])
        curve = micro_average_pr(proba, labels)
        # Every positive ranks above every negative: precision is 1 at the
        # point full recall is first reached, and AP is 1.
        first_full = int(np.argmax(curve.recall >= 1.0))
        assert curve.precision[first_full] == pytest.approx(1.0)
        assert average_precision(curve) == pytest.approx(1.0)

    def test_random_classifier_ap_near_chance(self):
        rng = np.random.default_rng(0)
        proba = rng.dirichlet(np.ones(4), size=400)
        labels = rng.integers(0, 4, 400)
        curve = micro_average_pr(proba, labels)
        ap = average_precision(curve)
        assert 0.15 < ap < 0.40  # chance is 0.25 for 4 classes

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            micro_average_pr(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_recall_monotone(self):
        rng = np.random.default_rng(1)
        proba = rng.dirichlet(np.ones(3), size=50)
        labels = rng.integers(0, 3, 50)
        curve = micro_average_pr(proba, labels)
        assert np.all(np.diff(curve.recall) >= 0)
        assert curve.recall[-1] == pytest.approx(1.0)


class TestPerClass:
    def test_uses_probabilities_metadata(self):
        records = [
            make_record("a", 0, true_label=0, predicted_label=0,
                        probabilities=(0.8, 0.2)),
            make_record("a", 1, true_label=1, predicted_label=0,
                        probabilities=(0.6, 0.4)),
        ]
        curve = precision_recall(ExperimentResult(records), class_index=0)
        # Scores 0.8 (positive) and 0.6 (negative): AP = 1.
        assert average_precision(curve) == pytest.approx(1.0)

    def test_fallback_without_probabilities(self):
        records = [
            make_record("a", 0, true_label=0, predicted_label=0, confidence=0.9),
            make_record("a", 1, true_label=0, predicted_label=1, confidence=0.8),
        ]
        curve = precision_recall(ExperimentResult(records), class_index=0)
        assert len(curve.precision) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            precision_recall(ExperimentResult([]), 0)

    def test_no_positives_raises(self):
        records = [make_record("a", 0, true_label=1, predicted_label=1)]
        with pytest.raises(ValueError):
            precision_recall(ExperimentResult(records), class_index=0)


class TestPRCurve:
    def test_validates_lengths(self):
        with pytest.raises(ValueError):
            PRCurve(
                precision=np.zeros(3), recall=np.zeros(2), thresholds=np.zeros(3)
            )
