"""Golden-value regression tests for the §2.2 metrics and PR curves.

A fixed-seed synthetic fleet result (4 environments x 24 images x 8
classes, full probability vectors) is pushed through every metric in
:mod:`repro.core.instability` and :mod:`repro.core.pr_curves`; the
outputs are pinned in ``tests/data/golden_metrics.json``. Any numeric
drift — a refactor changing tie-breaking, a vectorization changing
summation order — fails loudly here before it can silently shift the
paper's reproduced numbers.

Regenerate intentionally with::

    PYTHONPATH=src python -m pytest tests/core/test_golden_metrics.py --regen-golden
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.instability import (
    accuracy,
    image_stability_breakdown,
    instability,
    per_class_accuracy,
    per_class_instability,
    per_environment_accuracy,
    unstable_image_ids,
)
from repro.core.pr_curves import average_precision, micro_average_pr, precision_recall
from repro.core.records import ExperimentResult, PredictionRecord

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "golden_metrics.json"

NUM_CLASSES = 8
NUM_IMAGES = 24
ENVIRONMENTS = ("phone_a", "phone_b", "phone_c", "phone_d")
CLASS_NAMES = (
    "water_bottle",
    "remote",
    "mug",
    "stapler",
    "keyboard",
    "notebook",
    "scissors",
    "plant",
)


def _softmax(logits):
    z = np.exp(logits - logits.max())
    return z / z.sum()


@pytest.fixture(scope="module")
def fleet_result():
    """Deterministic synthetic fleet with stable and unstable images."""
    rng = np.random.default_rng(20240806)
    records = []
    proba_rows = []
    labels = []
    for image_id in range(NUM_IMAGES):
        true_label = image_id % NUM_CLASSES
        base = rng.normal(0.0, 1.0, NUM_CLASSES)
        base[true_label] += 1.2
        for env in ENVIRONMENTS:
            proba = _softmax(base + rng.normal(0.0, 0.8, NUM_CLASSES))
            ranking = tuple(int(c) for c in np.argsort(-proba, kind="stable"))
            records.append(
                PredictionRecord(
                    environment=env,
                    image_id=image_id,
                    true_label=true_label,
                    predicted_label=ranking[0],
                    confidence=float(proba[ranking[0]]),
                    class_name=CLASS_NAMES[true_label],
                    ranking=ranking,
                    angle=0.0,
                    metadata={"probabilities": tuple(float(p) for p in proba)},
                )
            )
            proba_rows.append(proba)
            labels.append(true_label)
    return (
        ExperimentResult(records, name="golden_synthetic"),
        np.array(proba_rows),
        np.array(labels),
    )


def _curve_summary(curve):
    return {
        "points": int(len(curve.precision)),
        "precision_sum": float(curve.precision.sum()),
        "recall_sum": float(curve.recall.sum()),
        "final_precision": float(curve.precision[-1]),
        "average_precision": average_precision(curve),
    }


def _compute_metrics(fleet_result):
    result, proba, labels = fleet_result
    per_class_curves = {
        CLASS_NAMES[c]: _curve_summary(precision_recall(result, c))
        for c in range(NUM_CLASSES)
    }
    return {
        "accuracy_top1": accuracy(result),
        "accuracy_top3": accuracy(result, k=3),
        "instability_top1": instability(result),
        "instability_top3": instability(result, k=3),
        "per_class_accuracy": per_class_accuracy(result),
        "per_class_instability": per_class_instability(result),
        "per_environment_accuracy": per_environment_accuracy(result),
        "unstable_image_ids": unstable_image_ids(result),
        "stability_breakdown": image_stability_breakdown(result),
        "per_class_pr": per_class_curves,
        "micro_pr": _curve_summary(micro_average_pr(proba, labels)),
    }


def _assert_matches(actual, golden, path="$"):
    if isinstance(golden, dict):
        assert isinstance(actual, dict), path
        assert sorted(actual) == sorted(golden), path
        for key in golden:
            _assert_matches(actual[key], golden[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert isinstance(actual, (list, tuple)), path
        assert len(actual) == len(golden), path
        for i, (a, g) in enumerate(zip(actual, golden)):
            _assert_matches(a, g, f"{path}[{i}]")
    elif isinstance(golden, float):
        assert actual == pytest.approx(golden, rel=1e-9, abs=1e-12), path
    else:
        assert actual == golden, path


def test_metrics_match_golden(fleet_result, regen_golden):
    metrics = _compute_metrics(fleet_result)
    if regen_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden file regenerated at {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH}; run pytest with --regen-golden to create it"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    _assert_matches(metrics, golden)


def test_golden_fixture_exercises_both_regimes(fleet_result):
    """Sanity-check the synthetic fleet covers the interesting cases.

    If a future edit to the generator makes every image stable (or every
    image unstable), the golden comparison would still pass after a
    --regen-golden — this guard keeps the fixture meaningful.
    """
    result, _, _ = fleet_result
    breakdown = image_stability_breakdown(result)
    assert breakdown["unstable"], "fixture lost its unstable images"
    assert breakdown["stable_correct"], "fixture lost its stable images"
    assert 0.0 < instability(result) < 1.0
    assert 0.0 < accuracy(result) < 1.0
