"""Serialized results and rendered reports are PYTHONHASHSEED-stable.

The DET003 fixes sort dict iteration at every site feeding serialization
or report ordering; this regression test proves the property end to end
by re-running the same serialization in subprocesses with different hash
seeds. The payload dicts are deliberately built by iterating a *set* of
string keys, so insertion order genuinely varies across seeds — only the
sorted iteration sites keep the output bytes identical.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

_SCRIPT = """
from repro.core.records import ExperimentResult, PredictionRecord
from repro.core.report import format_series
from repro.core.serialize import result_to_json

# Set iteration order depends on PYTHONHASHSEED; the dicts below are
# assembled in that varying order on purpose.
keys = {"zeta", "alpha", "mid", "beta", "omega", "gamma"}
metadata = {k: {"len": len(k), "tag": k.upper()} for k in keys}
record = PredictionRecord(
    environment="pixel3",
    image_id=1,
    true_label=0,
    predicted_label=0,
    confidence=0.5,
    class_name="mug",
    ranking=(0, 1, 2),
    angle=0.0,
    metadata=metadata,
)
print(result_to_json(ExperimentResult([record], name="hashseed")))
print(format_series({k: len(k) / 10.0 for k in keys}))
"""


def _run(hashseed: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "PYTHONHASHSEED": hashseed,
            "PATH": "/usr/bin:/bin",
        },
        check=True,
    )
    return result.stdout


def test_output_identical_across_hash_seeds():
    outputs = {_run(seed) for seed in ("0", "1", "42")}
    assert len(outputs) == 1, "serialized output depends on PYTHONHASHSEED"
    out = outputs.pop()
    # Sanity: sorted metadata keys actually appear in sorted order.
    assert out.index('"alpha"') < out.index('"beta"') < out.index('"zeta"')
    # format_series lines are key-sorted too.
    lines = [l.strip() for l in out.splitlines() if l.strip().startswith(("a", "b", "g", "m", "o", "z"))]
    assert lines == sorted(lines)
