"""Tests for the instability metric — the paper's §2.2 definitions."""

import pytest

from repro.core.instability import (
    accuracy,
    image_stability_breakdown,
    instability,
    per_class_accuracy,
    per_class_instability,
    per_environment_accuracy,
    unstable_image_ids,
)
from repro.core.records import ExperimentResult
from tests.conftest import make_record


class TestAccuracy:
    def test_simple(self, two_env_result):
        # Correct records: a/0, b/0, a/2, a/3 -> 4 of 7.
        assert accuracy(two_env_result) == pytest.approx(4 / 7)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(ExperimentResult([]))

    def test_topk_accuracy_increases(self):
        records = [
            make_record(true_label=5, predicted_label=3, ranking=(3, 5, 0, 1, 2, 4, 6, 7))
        ]
        result = ExperimentResult(records)
        assert accuracy(result, k=1) == 0.0
        assert accuracy(result, k=3) == 1.0


class TestInstability:
    def test_fixture_value(self, two_env_result):
        # Images 0 (stable-correct), 1 (stable-incorrect), 2 (unstable);
        # image 3 seen once -> excluded. 1 unstable / 3 eligible.
        assert instability(two_env_result) == pytest.approx(1 / 3)

    def test_all_wrong_is_not_unstable(self):
        """Paper: if every environment is wrong, the image is not unstable."""
        records = [
            make_record("a", 0, true_label=1, predicted_label=2),
            make_record("b", 0, true_label=1, predicted_label=3),
        ]
        assert instability(ExperimentResult(records)) == 0.0

    def test_all_correct_is_stable(self):
        records = [
            make_record("a", 0, true_label=1, predicted_label=1),
            make_record("b", 0, true_label=1, predicted_label=1),
        ]
        assert instability(ExperimentResult(records)) == 0.0

    def test_single_environment_undefined(self):
        records = [make_record("a", 0), make_record("a", 1)]
        with pytest.raises(ValueError):
            instability(ExperimentResult(records))

    def test_disagreeing_but_both_correct_at_topk(self):
        # Different top-1 labels, but true label in both top-3 -> stable at k=3.
        records = [
            make_record("a", 0, true_label=1, predicted_label=1,
                        ranking=(1, 2, 3, 0, 4, 5, 6, 7)),
            make_record("b", 0, true_label=1, predicted_label=2,
                        ranking=(2, 1, 3, 0, 4, 5, 6, 7)),
        ]
        result = ExperimentResult(records)
        assert instability(result, k=1) == 1.0
        assert instability(result, k=3) == 0.0

    def test_three_environments(self):
        records = [
            make_record("a", 0, true_label=1, predicted_label=1),
            make_record("b", 0, true_label=1, predicted_label=1),
            make_record("c", 0, true_label=1, predicted_label=9),
        ]
        assert instability(ExperimentResult(records)) == 1.0

    def test_repeat_records_same_environment_do_not_count_as_cross_env(self):
        # Two records from ONE environment disagreeing is not eligible.
        records = [
            make_record("a", 0, true_label=1, predicted_label=1),
            make_record("a", 0, true_label=1, predicted_label=2),
        ]
        with pytest.raises(ValueError):
            instability(ExperimentResult(records))


class TestBreakdowns:
    def test_unstable_image_ids(self, two_env_result):
        assert unstable_image_ids(two_env_result) == [2]

    def test_image_stability_breakdown(self, two_env_result):
        b = image_stability_breakdown(two_env_result)
        assert b["stable_correct"] == [0]
        assert b["stable_incorrect"] == [1]
        assert b["unstable"] == [2]

    def test_per_class(self):
        records = [
            make_record("a", 0, 1, 1, class_name="purse"),
            make_record("b", 0, 1, 2, class_name="purse"),
            make_record("a", 1, 1, 1, class_name="backpack"),
            make_record("b", 1, 1, 1, class_name="backpack"),
        ]
        result = ExperimentResult(records)
        inst = per_class_instability(result)
        assert inst["purse"] == 1.0
        assert inst["backpack"] == 0.0
        acc = per_class_accuracy(result)
        assert acc["purse"] == 0.5
        assert acc["backpack"] == 1.0

    def test_per_environment_accuracy(self, two_env_result):
        acc = per_environment_accuracy(two_env_result)
        assert acc["a"] == pytest.approx(3 / 4)
        assert acc["b"] == pytest.approx(1 / 3)
