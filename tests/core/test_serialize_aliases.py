"""Tests for result serialization and label aliasing."""

import numpy as np
import pytest

from repro.core.records import ExperimentResult, PredictionRecord
from repro.core.serialize import (
    load_result,
    result_from_json,
    result_to_json,
    save_result,
)
from repro.core.instability import accuracy, instability
from tests.conftest import make_record


class TestLabelAliases:
    def test_alias_counts_as_correct(self):
        """Paper §3.2: 'wine bottle' and 'red wine' overlap in ImageNet."""
        r = PredictionRecord(
            environment="a",
            image_id=0,
            true_label=2,
            predicted_label=5,
            confidence=0.8,
            class_name="wine_bottle",
            ranking=(5, 2, 0, 1, 3, 4, 6, 7),
            acceptable_labels=(5,),
        )
        assert r.is_correct()

    def test_alias_affects_instability(self):
        records = [
            PredictionRecord("a", 0, 2, 2, 0.9, "wine", ranking=(2, 5, 0, 1, 3, 4, 6, 7)),
            PredictionRecord("b", 0, 2, 5, 0.9, "wine", ranking=(5, 2, 0, 1, 3, 4, 6, 7)),
        ]
        # Without aliasing the image is unstable...
        assert instability(ExperimentResult(records)) == 1.0
        # ...with 5 accepted as "red wine", it is stable-correct.
        aliased = [
            PredictionRecord(
                r.environment, r.image_id, r.true_label, r.predicted_label,
                r.confidence, r.class_name, ranking=r.ranking,
                acceptable_labels=(5,),
            )
            for r in records
        ]
        assert instability(ExperimentResult(aliased)) == 0.0

    def test_alias_in_topk(self):
        r = PredictionRecord(
            "a", 0, 2, 0, 0.6, "wine",
            ranking=(0, 5, 1, 2, 3, 4, 6, 7), acceptable_labels=(5,),
        )
        assert not r.is_correct(k=1)
        assert r.is_correct(k=2)  # the alias appears at rank 2


class TestSerialization:
    def _result(self):
        records = [
            make_record("phone_a", 0, 1, 1, 0.9, angle=15.0,
                        probabilities=(0.1,) * 8),
            make_record("phone_b", 0, 1, 2, 0.55),
        ]
        return ExperimentResult(records, name="demo")

    def test_roundtrip_preserves_records(self):
        result = self._result()
        back = result_from_json(result_to_json(result))
        assert back.name == "demo"
        assert len(back) == len(result)
        for a, b in zip(result, back):
            assert a.environment == b.environment
            assert a.image_id == b.image_id
            assert a.predicted_label == b.predicted_label
            assert a.ranking == b.ranking
            assert a.angle == b.angle

    def test_roundtrip_preserves_metrics(self):
        result = self._result()
        back = result_from_json(result_to_json(result))
        assert accuracy(back) == accuracy(result)
        assert instability(back) == instability(result)

    def test_numpy_scalars_in_metadata(self):
        record = make_record("a", 0, numpy_value=np.float32(0.5))
        text = result_to_json(ExperimentResult([record]))
        back = result_from_json(text)
        assert back.records[0].metadata["numpy_value"] == pytest.approx(0.5)

    def test_file_roundtrip(self, tmp_path):
        result = self._result()
        path = tmp_path / "result.json"
        save_result(result, path)
        assert instability(load_result(path)) == instability(result)

    def test_version_check(self):
        with pytest.raises(ValueError, match="version"):
            result_from_json('{"format_version": 99, "records": []}')

    def test_aliases_survive_roundtrip(self):
        record = PredictionRecord(
            "a", 0, 1, 5, 0.5, "wine", ranking=(5, 1, 0, 2, 3, 4, 6, 7),
            acceptable_labels=(5, 6),
        )
        back = result_from_json(result_to_json(ExperimentResult([record])))
        assert back.records[0].acceptable_labels == (5, 6)
        assert back.records[0].is_correct()


class TestCLI:
    def test_parser_builds(self):
        from repro.__main__ import build_parser

        parser = build_parser()
        args = parser.parse_args(["end-to-end", "--per-class", "2"])
        assert args.per_class == 2
        assert callable(args.func)

    def test_all_subcommands_registered(self):
        from repro.__main__ import build_parser

        parser = build_parser()
        for cmd in ("end-to-end", "firebase", "compression", "isp",
                    "raw-vs-jpeg", "stability"):
            args = parser.parse_args([cmd] if cmd != "stability" else [cmd])
            assert args.command == cmd

    def test_requires_subcommand(self):
        from repro.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args([])
