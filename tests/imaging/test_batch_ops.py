"""Batched imaging ops are bit-identical to their per-item forms."""

import numpy as np
import pytest

from repro.imaging.color import (
    apply_wb_gains,
    apply_wb_gains_batch,
    gray_world_gains,
    gray_world_gains_batch,
)
from repro.imaging.ops import (
    bilinear_resize,
    bilinear_resize_batch,
    gaussian_blur,
    gaussian_blur_batch,
    gaussian_blur_planes_batch,
    unsharp_mask,
    unsharp_mask_batch,
)


@pytest.fixture(scope="module")
def stack():
    rng = np.random.default_rng(11)
    return rng.random((4, 24, 32, 3)).astype(np.float32)


def _identical(batched, serial_items):
    expected = np.stack(serial_items)
    assert batched.dtype == expected.dtype
    assert batched.tobytes() == expected.tobytes()


def test_bilinear_resize_batch(stack):
    for hw in ((12, 16), (24, 32), (30, 40)):
        out = bilinear_resize_batch(stack, *hw)
        _identical(out, [bilinear_resize(item, *hw) for item in stack])


def test_gaussian_blur_batch(stack):
    for sigma in (0.0, 0.8, 2.5):
        out = gaussian_blur_batch(stack, sigma)
        _identical(out, [gaussian_blur(item, sigma) for item in stack])


def test_gaussian_blur_planes_batch(stack):
    planes = np.ascontiguousarray(stack[..., 0])
    for sigma in (0.0, 1.2):
        out = gaussian_blur_planes_batch(planes, sigma)
        _identical(out, [gaussian_blur(p, sigma) for p in planes])


def test_unsharp_mask_batch(stack):
    out = unsharp_mask_batch(stack, sigma=1.0, amount=0.6)
    _identical(out, [unsharp_mask(item, sigma=1.0, amount=0.6) for item in stack])


def test_gray_world_gains_batch(stack):
    out = gray_world_gains_batch(stack)
    _identical(out, [np.asarray(gray_world_gains(item), np.float32) for item in stack])


def test_apply_wb_gains_batch(stack):
    gains = gray_world_gains_batch(stack)
    out = apply_wb_gains_batch(stack, gains)
    _identical(
        out, [apply_wb_gains(item, tuple(g)) for item, g in zip(stack, gains)]
    )


def test_batch_ops_reject_wrong_rank(stack):
    with pytest.raises(ValueError):
        bilinear_resize_batch(stack[0], 12, 16)
    with pytest.raises(ValueError):
        gray_world_gains_batch(stack[..., 0])
