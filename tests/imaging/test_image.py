"""Tests for the ImageBuffer / RawImage containers."""

import numpy as np
import pytest

from repro.imaging import BAYER_PATTERNS, ImageBuffer, RawImage


class TestImageBuffer:
    def test_accepts_float_and_casts(self):
        buf = ImageBuffer(np.zeros((2, 3, 3), dtype=np.float64))
        assert buf.pixels.dtype == np.float32
        assert buf.shape == (2, 3, 3)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            ImageBuffer(np.zeros((4, 4)))

    def test_rejects_wrong_channels(self):
        with pytest.raises(ValueError):
            ImageBuffer(np.zeros((4, 4, 4)))

    def test_from_uint8_roundtrip(self):
        arr = np.arange(256, dtype=np.uint8).reshape(4, -1)[:4, :4]
        rgb = np.stack([arr, arr, arr], axis=-1)
        buf = ImageBuffer.from_uint8(rgb)
        assert np.array_equal(buf.to_uint8(), rgb)

    def test_from_uint8_requires_uint8(self):
        with pytest.raises(TypeError):
            ImageBuffer.from_uint8(np.zeros((2, 2, 3), dtype=np.float32))

    def test_to_uint8_clips(self):
        buf = ImageBuffer(np.array([[[1.5, -0.5, 0.5]]], dtype=np.float32))
        out = buf.to_uint8()
        assert out.tolist() == [[[255, 0, 128]]]

    def test_clipped_returns_copy(self):
        buf = ImageBuffer(np.full((2, 2, 3), 2.0, dtype=np.float32))
        clipped = buf.clipped()
        assert clipped.pixels.max() == 1.0
        assert buf.pixels.max() == 2.0

    def test_full_constructor(self):
        buf = ImageBuffer.full(3, 5, 0.25)
        assert buf.shape == (3, 5, 3)
        assert np.all(buf.pixels == np.float32(0.25))

    def test_scaled(self):
        buf = ImageBuffer.full(2, 2, 0.5).scaled(0.5)
        assert np.allclose(buf.pixels, 0.25)

    def test_equality(self):
        a = ImageBuffer.full(2, 2, 0.1)
        b = ImageBuffer.full(2, 2, 0.1)
        c = ImageBuffer.full(2, 2, 0.2)
        assert a == b
        assert not (a == c)


class TestRawImage:
    def test_basic_construction(self):
        raw = RawImage(np.zeros((4, 6), dtype=np.float32))
        assert raw.height == 4 and raw.width == 6
        assert raw.pattern == "RGGB"

    def test_rejects_odd_dims(self):
        with pytest.raises(ValueError):
            RawImage(np.zeros((3, 4), dtype=np.float32))

    def test_rejects_unknown_pattern(self):
        with pytest.raises(ValueError):
            RawImage(np.zeros((4, 4), dtype=np.float32), pattern="XYZW")

    def test_rejects_bad_levels(self):
        with pytest.raises(ValueError):
            RawImage(np.zeros((4, 4)), black_level=1.0, white_level=0.5)

    @pytest.mark.parametrize("pattern", sorted(BAYER_PATTERNS))
    def test_channel_masks_partition(self, pattern):
        raw = RawImage(np.zeros((6, 8), dtype=np.float32), pattern=pattern)
        masks = [raw.channel_mask(c) for c in range(3)]
        total = sum(m.astype(int) for m in masks)
        assert np.all(total == 1)
        # Green photosites are twice as common in every Bayer layout.
        assert masks[1].sum() == 2 * masks[0].sum() == 2 * masks[2].sum()

    def test_rggb_corner_is_red(self):
        raw = RawImage(np.zeros((4, 4), dtype=np.float32), pattern="RGGB")
        assert raw.channel_mask(0)[0, 0]
        assert raw.channel_mask(1)[0, 1]
        assert raw.channel_mask(2)[1, 1]

    def test_copy_is_deep(self):
        raw = RawImage(np.zeros((4, 4), dtype=np.float32), metadata={"iso": 100})
        dup = raw.copy()
        dup.mosaic[0, 0] = 1.0
        dup.metadata["iso"] = 200
        assert raw.mosaic[0, 0] == 0.0
        assert raw.metadata["iso"] == 100
