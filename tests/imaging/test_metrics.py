"""Tests for image-difference metrics."""

import numpy as np
import pytest

from repro.imaging import mse, pixel_diff_map, psnr, ssim


def test_mse_zero_for_identical():
    img = np.random.default_rng(0).random((4, 4, 3)).astype(np.float32)
    assert mse(img, img) == 0.0


def test_mse_shape_mismatch():
    with pytest.raises(ValueError):
        mse(np.zeros((2, 2)), np.zeros((3, 3)))


def test_psnr_infinite_for_identical():
    img = np.zeros((4, 4), dtype=np.float32)
    assert psnr(img, img) == float("inf")


def test_psnr_known_value():
    a = np.zeros((10, 10), dtype=np.float32)
    b = np.full((10, 10), 0.1, dtype=np.float32)
    assert psnr(a, b) == pytest.approx(20.0, abs=1e-4)


def test_pixel_diff_map_threshold():
    a = np.zeros((4, 4, 3), dtype=np.float32)
    b = a.copy()
    b[0, 0, 0] = 0.2  # one divergent pixel
    b[1, 1, 1] = 0.01  # below threshold
    stats = pixel_diff_map(a, b, threshold=0.05)
    assert stats.divergent_fraction == pytest.approx(1 / 16)
    assert stats.mask[0, 0] and not stats.mask[1, 1]
    assert stats.max_abs_diff == pytest.approx(0.2)


def test_pixel_diff_map_grayscale():
    a = np.zeros((2, 2), dtype=np.float32)
    b = np.full((2, 2), 0.1, dtype=np.float32)
    stats = pixel_diff_map(a, b)
    assert stats.divergent_fraction == 1.0


def test_ssim_identical_is_one():
    img = np.random.default_rng(1).random((16, 16)).astype(np.float32)
    assert ssim(img, img) == pytest.approx(1.0, abs=1e-5)


def test_ssim_penalizes_noise():
    rng = np.random.default_rng(2)
    img = rng.random((32, 32)).astype(np.float32)
    noisy = img + rng.normal(0, 0.2, img.shape).astype(np.float32)
    assert ssim(img, noisy) < 0.9


def test_ssim_color_input():
    img = np.random.default_rng(3).random((16, 16, 3)).astype(np.float32)
    assert ssim(img, img) == pytest.approx(1.0, abs=1e-5)
