"""Tests for color-space conversions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.imaging import color


def _rgb_arrays(max_side=6):
    return arrays(
        np.float32,
        st.tuples(
            st.integers(1, max_side), st.integers(1, max_side), st.just(3)
        ),
        elements=st.floats(0.0, 1.0, width=32),
    )


class TestYCbCr:
    def test_white_maps_to_unit_luma(self):
        ycc = color.rgb_to_ycbcr(np.ones((1, 1, 3), dtype=np.float32))
        assert ycc[0, 0, 0] == pytest.approx(1.0, abs=1e-6)
        assert abs(ycc[0, 0, 1]) < 1e-6 and abs(ycc[0, 0, 2]) < 1e-6

    def test_black_maps_to_zero(self):
        ycc = color.rgb_to_ycbcr(np.zeros((1, 1, 3), dtype=np.float32))
        assert np.allclose(ycc, 0.0, atol=1e-7)

    @given(_rgb_arrays())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, rgb):
        back = color.ycbcr_to_rgb(color.rgb_to_ycbcr(rgb))
        assert np.allclose(back, rgb, atol=1e-4)

    def test_red_has_positive_cr(self):
        ycc = color.rgb_to_ycbcr(np.array([[[1.0, 0.0, 0.0]]], dtype=np.float32))
        assert ycc[0, 0, 2] > 0.4


class TestHSV:
    @pytest.mark.parametrize(
        "rgb,expected_h",
        [((1, 0, 0), 0.0), ((0, 1, 0), 1 / 3), ((0, 0, 1), 2 / 3)],
    )
    def test_primary_hues(self, rgb, expected_h):
        hsv = color.rgb_to_hsv(np.array([[rgb]], dtype=np.float32))
        assert hsv[0, 0, 0] == pytest.approx(expected_h, abs=1e-5)
        assert hsv[0, 0, 1] == pytest.approx(1.0)
        assert hsv[0, 0, 2] == pytest.approx(1.0)

    def test_gray_has_zero_saturation(self):
        hsv = color.rgb_to_hsv(np.full((2, 2, 3), 0.5, dtype=np.float32))
        assert np.allclose(hsv[..., 1], 0.0)

    @given(_rgb_arrays())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, rgb):
        back = color.hsv_to_rgb(color.rgb_to_hsv(rgb))
        assert np.allclose(back, rgb, atol=1e-4)


class TestSRGB:
    @given(arrays(np.float32, (4, 4), elements=st.floats(0.0, 1.0, width=32)))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, linear):
        back = color.srgb_decode(color.srgb_encode(linear))
        assert np.allclose(back, linear, atol=1e-5)

    def test_monotonic(self):
        xs = np.linspace(0, 1, 101, dtype=np.float32)
        ys = color.srgb_encode(xs)
        assert np.all(np.diff(ys) > 0)

    def test_encode_brightens_midtones(self):
        assert color.srgb_encode(np.float32(0.18)) > 0.18


class TestColorMatrix:
    def test_identity(self):
        rgb = np.random.default_rng(0).random((3, 3, 3)).astype(np.float32)
        out = color.apply_color_matrix(rgb, np.eye(3))
        assert np.allclose(out, rgb)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            color.apply_color_matrix(np.zeros((2, 2, 3)), np.eye(4))

    def test_channel_swap(self):
        swap = np.array([[0, 1, 0], [1, 0, 0], [0, 0, 1]], dtype=np.float32)
        rgb = np.array([[[0.2, 0.7, 0.1]]], dtype=np.float32)
        out = color.apply_color_matrix(rgb, swap)
        assert np.allclose(out, [[[0.7, 0.2, 0.1]]])


class TestWhiteBalance:
    def test_gray_world_on_neutral_image(self):
        rgb = np.full((4, 4, 3), 0.5, dtype=np.float32)
        gains = color.gray_world_gains(rgb)
        assert np.allclose(gains, 1.0)

    def test_gray_world_corrects_cast(self):
        rng = np.random.default_rng(1)
        rgb = rng.random((8, 8, 3)).astype(np.float32)
        rgb[..., 0] *= 0.5  # red-deficient cast
        gains = color.gray_world_gains(rgb)
        balanced = color.apply_wb_gains(rgb, gains)
        means = balanced.reshape(-1, 3).mean(axis=0)
        assert means[0] == pytest.approx(means[1], rel=1e-4)

    def test_apply_wb_rejects_bad_gains(self):
        with pytest.raises(ValueError):
            color.apply_wb_gains(np.zeros((2, 2, 3)), [1.0, 2.0])


def test_luminance_weights():
    lum = color.luminance(np.array([[[1.0, 1.0, 1.0]]], dtype=np.float32))
    assert lum[0, 0] == pytest.approx(1.0, abs=1e-5)
    green = color.luminance(np.array([[[0, 1.0, 0]]], dtype=np.float32))
    red = color.luminance(np.array([[[1.0, 0, 0]]], dtype=np.float32))
    assert green[0, 0] > red[0, 0]
