"""Tests for spatial image operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imaging import ops


class TestBilinearResize:
    def test_identity_when_same_size(self):
        img = np.random.default_rng(0).random((5, 7, 3)).astype(np.float32)
        out = ops.bilinear_resize(img, 5, 7)
        assert np.array_equal(out, img)

    def test_constant_image_stays_constant(self):
        img = np.full((8, 8), 0.3, dtype=np.float32)
        out = ops.bilinear_resize(img, 3, 13)
        assert np.allclose(out, 0.3, atol=1e-6)

    def test_preserves_mean_roughly(self):
        rng = np.random.default_rng(42)
        img = rng.random((32, 32)).astype(np.float32)
        out = ops.bilinear_resize(img, 16, 16)
        assert abs(out.mean() - img.mean()) < 0.02

    def test_upscale_shape(self):
        out = ops.bilinear_resize(np.zeros((4, 4, 3), dtype=np.float32), 9, 11)
        assert out.shape == (9, 11, 3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ops.bilinear_resize(np.zeros((4, 4)), 0, 4)

    @given(st.integers(1, 20), st.integers(1, 20))
    @settings(max_examples=25, deadline=None)
    def test_output_within_input_range(self, h, w):
        rng = np.random.default_rng(h * 100 + w)
        img = rng.random((6, 6)).astype(np.float32)
        out = ops.bilinear_resize(img, h, w)
        assert out.min() >= img.min() - 1e-6
        assert out.max() <= img.max() + 1e-6


class TestCropPad:
    def test_center_crop(self):
        img = np.arange(36, dtype=np.float32).reshape(6, 6)
        out = ops.center_crop(img, 2, 2)
        assert out.shape == (2, 2)
        assert out[0, 0] == img[2, 2]

    def test_center_crop_too_large(self):
        with pytest.raises(ValueError):
            ops.center_crop(np.zeros((4, 4)), 5, 4)

    def test_pad_to_multiple(self):
        img = np.ones((5, 7, 3), dtype=np.float32)
        out = ops.pad_to_multiple(img, 8)
        assert out.shape == (8, 8, 3)

    def test_pad_noop_when_aligned(self):
        img = np.ones((8, 8), dtype=np.float32)
        assert ops.pad_to_multiple(img, 8) is img

    def test_pad_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ops.pad_to_multiple(np.zeros((4, 4)), 0)


class TestBlurs:
    def test_gaussian_kernel_normalized(self):
        k = ops.gaussian_kernel1d(1.5)
        assert k.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.argmax(k) == len(k) // 2

    def test_gaussian_kernel_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            ops.gaussian_kernel1d(0.0)

    def test_gaussian_blur_preserves_constant(self):
        img = np.full((10, 10, 3), 0.7, dtype=np.float32)
        out = ops.gaussian_blur(img, 2.0)
        assert np.allclose(out, 0.7, atol=1e-5)

    def test_gaussian_blur_reduces_variance(self):
        rng = np.random.default_rng(3)
        img = rng.random((32, 32)).astype(np.float32)
        out = ops.gaussian_blur(img, 1.0)
        assert out.var() < img.var()

    def test_zero_sigma_is_copy(self):
        img = np.random.default_rng(0).random((4, 4)).astype(np.float32)
        out = ops.gaussian_blur(img, 0.0)
        assert np.array_equal(out, img)
        assert out is not img

    def test_box_blur_odd_only(self):
        with pytest.raises(ValueError):
            ops.box_blur(np.zeros((4, 4)), 2)

    def test_box_blur_smooths(self):
        img = np.zeros((9, 9), dtype=np.float32)
        img[4, 4] = 1.0
        out = ops.box_blur(img, 3)
        assert out[4, 4] == pytest.approx(1.0 / 9.0, rel=1e-3)

    def test_unsharp_sharpens_edge(self):
        img = np.zeros((8, 16), dtype=np.float32)
        img[:, 8:] = 1.0
        out = ops.unsharp_mask(img, sigma=1.0, amount=1.0)
        # Overshoot on the bright side of the edge.
        assert out.max() > 1.0


class TestWarps:
    def test_identity_affine(self):
        img = np.random.default_rng(0).random((6, 6, 3)).astype(np.float32)
        out = ops.affine_warp(img, np.eye(2))
        assert np.allclose(out, img, atol=1e-6)

    def test_perspective_zero_angle_is_identity(self):
        img = np.random.default_rng(1).random((8, 8, 3)).astype(np.float32)
        out = ops.perspective_shift(img, 0.0)
        assert np.allclose(out, img, atol=1e-5)

    def test_perspective_changes_image(self):
        # Edge placed off-center so the foreshortening actually moves it
        # (the warp is anchored at the image center).
        img = np.zeros((16, 16), dtype=np.float32)
        img[:, 3:] = 1.0
        out = ops.perspective_shift(img, 25.0)
        assert not np.allclose(out, img)

    def test_perspective_symmetric_angles_differ(self):
        rng = np.random.default_rng(2)
        img = rng.random((16, 16)).astype(np.float32)
        left = ops.perspective_shift(img, -20.0)
        right = ops.perspective_shift(img, 20.0)
        assert not np.allclose(left, right)
