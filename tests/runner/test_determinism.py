"""The headline invariant: parallel fleet execution == serial, bit for bit.

For every experiment class, the same configuration is run serially and
with 2- and 4-worker process pools; the resulting ``ExperimentResult``
records (including full probability vectors) and instability numbers
must be *identical*, not approximately equal. A second battery checks
that cache hits — memory-level and disk-level — return arrays
bit-identical to the cold computation that populated them.
"""

import numpy as np
import pytest

from repro.core import instability
from repro.lab import (
    CompressionFormatExperiment,
    CompressionQualityExperiment,
    EndToEndExperiment,
    ISPComparisonExperiment,
    LensVariationExperiment,
    LightingVariationExperiment,
    RawCaptureBank,
    RawVsJpegExperiment,
)
from repro.runner import (
    CaptureCache,
    CaptureUnit,
    FleetExecutor,
    execute_unit,
    unit_entropy,
)

WORKER_COUNTS = (2, 4)


def _records(result):
    return list(result.records)


def _assert_same_result(serial, other, label):
    assert len(serial) == len(other), label
    assert _records(serial) == _records(other), label
    assert instability(serial) == instability(other), label


# ----------------------------------------------------------------------
# Parallel == serial, per experiment class
# ----------------------------------------------------------------------
class TestParallelEqualsSerial:
    @pytest.fixture(scope="class")
    def serial_end_to_end(self, tiny_model):
        exp = EndToEndExperiment(model=tiny_model, angles=(0.0, 15.0), seed=3)
        return exp.run(per_class=1)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_end_to_end(self, tiny_model, serial_end_to_end, workers):
        exp = EndToEndExperiment(
            model=tiny_model, angles=(0.0, 15.0), seed=3, workers=workers
        )
        _assert_same_result(
            serial_end_to_end, exp.run(per_class=1), f"workers={workers}"
        )

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_raw_capture_bank(self, workers):
        serial = RawCaptureBank.collect(per_class=1, seed=1)
        parallel = RawCaptureBank.collect(per_class=1, seed=1, workers=workers)
        assert serial.phone_names == parallel.phone_names
        for a, b in zip(serial.raws, parallel.raws):
            assert np.array_equal(a.mosaic, b.mosaic)
            assert a.wb_gains == b.wb_gains
            assert a.pattern == b.pattern

    @pytest.fixture(scope="class")
    def bank(self):
        return RawCaptureBank.collect(per_class=1, seed=0)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_compression_quality(self, tiny_model, bank, workers):
        serial = CompressionQualityExperiment(model=tiny_model).run(bank)
        parallel = CompressionQualityExperiment(
            model=tiny_model, workers=workers
        ).run(bank)
        _assert_same_result(serial.result, parallel.result, f"workers={workers}")
        assert serial.avg_size_bytes == parallel.avg_size_bytes

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_compression_format(self, tiny_model, bank, workers):
        serial = CompressionFormatExperiment(model=tiny_model).run(bank)
        parallel = CompressionFormatExperiment(
            model=tiny_model, workers=workers
        ).run(bank)
        _assert_same_result(serial.result, parallel.result, f"workers={workers}")
        assert serial.avg_size_bytes == parallel.avg_size_bytes

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_isp_comparison(self, tiny_model, bank, workers):
        serial = ISPComparisonExperiment(model=tiny_model).run(bank)
        parallel = ISPComparisonExperiment(model=tiny_model, workers=workers).run(
            bank
        )
        _assert_same_result(serial.result, parallel.result, f"workers={workers}")

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_raw_vs_jpeg(self, tiny_model, workers):
        serial = RawVsJpegExperiment(model=tiny_model, seed=2).run(per_class=1)
        parallel = RawVsJpegExperiment(
            model=tiny_model, seed=2, workers=workers
        ).run(per_class=1)
        _assert_same_result(serial.jpeg_result, parallel.jpeg_result, "jpeg arm")
        _assert_same_result(serial.raw_result, parallel.raw_result, "raw arm")

    @pytest.mark.parametrize("workers", (2,))
    def test_lighting_variation(self, tiny_model, workers):
        serial = LightingVariationExperiment(model=tiny_model, seed=1).run(
            per_class=1
        )
        parallel = LightingVariationExperiment(
            model=tiny_model, seed=1, workers=workers
        ).run(per_class=1)
        _assert_same_result(serial, parallel, f"workers={workers}")

    @pytest.mark.parametrize("workers", (2,))
    def test_lens_variation(self, tiny_model, workers):
        serial = LensVariationExperiment(model=tiny_model, seed=1, units=2).run(
            per_class=1
        )
        parallel = LensVariationExperiment(
            model=tiny_model, seed=1, units=2, workers=workers
        ).run(per_class=1)
        _assert_same_result(serial, parallel, f"workers={workers}")


# ----------------------------------------------------------------------
# Cache hits return bit-identical arrays
# ----------------------------------------------------------------------
class TestCacheIdentity:
    def test_warm_experiment_equals_cold(self, tiny_model, tmp_path):
        cache = CaptureCache(tmp_path / "fleet")
        cold = EndToEndExperiment(
            model=tiny_model, angles=(0.0,), seed=0, cache=cache
        ).run(per_class=1)
        assert cache.stats.stores > 0

        warm = EndToEndExperiment(
            model=tiny_model, angles=(0.0,), seed=0, cache=cache
        ).run(per_class=1)
        assert cache.stats.hits > 0
        _assert_same_result(cold, warm, "warm vs cold")

    def test_disk_layer_equals_cold(self, tiny_model, tmp_path):
        """A fresh process's cache (empty memory, shared dir) must match."""
        cache_dir = tmp_path / "fleet"
        cold = EndToEndExperiment(
            model=tiny_model, angles=(0.0,), seed=0, cache=CaptureCache(cache_dir)
        ).run(per_class=1)
        # New CaptureCache instance: the memory layer is empty, so every
        # hit below is served from disk.
        disk_cache = CaptureCache(cache_dir)
        warm = EndToEndExperiment(
            model=tiny_model, angles=(0.0,), seed=0, cache=disk_cache
        ).run(per_class=1)
        assert disk_cache.stats.hits > 0
        _assert_same_result(cold, warm, "disk-warm vs cold")

    def test_unit_level_hit_is_bit_identical(self, tmp_path, small_radiance):
        from repro.devices import capture_fleet

        profile = capture_fleet()[0]
        unit = CaptureUnit(
            kind="photograph",
            profile=profile,
            radiance=small_radiance,
            entropy=unit_entropy(0, profile.name, 0, 0),
        )
        fresh = execute_unit(unit)
        cache = CaptureCache(tmp_path / "u")
        executor = FleetExecutor(workers=0, cache=cache)
        cold = executor.run([unit])[0]
        hit = executor.run([unit])[0]
        for key in fresh:
            assert np.array_equal(fresh[key], cold[key])
            assert np.array_equal(fresh[key], hit[key])
        assert cache.stats.hits == 1

    def test_parallel_with_cold_cache_matches_serial(self, tiny_model, tmp_path):
        serial = EndToEndExperiment(model=tiny_model, angles=(0.0,), seed=0).run(
            per_class=1
        )
        parallel_cached = EndToEndExperiment(
            model=tiny_model,
            angles=(0.0,),
            seed=0,
            workers=2,
            cache=CaptureCache(tmp_path / "pc"),
        ).run(per_class=1)
        _assert_same_result(serial, parallel_cached, "parallel+cache vs serial")


# ----------------------------------------------------------------------
# Seed independence: order and partitioning cannot matter
# ----------------------------------------------------------------------
class TestUnitIndependence:
    def test_units_commute(self, small_radiance):
        """Executing units in any order yields identical payloads."""
        from repro.devices import capture_fleet

        profile = capture_fleet()[0]
        units = [
            CaptureUnit(
                kind="photograph",
                profile=profile,
                radiance=small_radiance,
                entropy=unit_entropy(0, profile.name, i, 0),
            )
            for i in range(4)
        ]
        forward = [execute_unit(u) for u in units]
        backward = [execute_unit(u) for u in reversed(units)][::-1]
        for a, b in zip(forward, backward):
            assert np.array_equal(a["pixels"], b["pixels"])

    def test_distinct_units_get_distinct_noise(self, small_radiance):
        from repro.devices import capture_fleet

        profile = capture_fleet()[0]
        a, b = (
            execute_unit(
                CaptureUnit(
                    kind="photograph",
                    profile=profile,
                    radiance=small_radiance,
                    entropy=unit_entropy(0, profile.name, i, 0),
                )
            )
            for i in (0, 1)
        )
        assert not np.array_equal(a["pixels"], b["pixels"])
