"""Unit tests for content-addressed fingerprinting and the capture cache."""

import dataclasses

import numpy as np
import pytest

from repro.devices import capture_fleet
from repro.runner import CaptureCache, fingerprint
from repro.runner.units import CaptureUnit, unit_cache_key
from repro.runner.seeds import unit_entropy


def _payload():
    rng = np.random.default_rng(7)
    return {
        "pixels": rng.random((8, 8, 3)).astype(np.float32),
        "encoded_size": np.int64(1234),
        "meta_json": np.array('{"a": 1}'),
    }


# ----------------------------------------------------------------------
# fingerprint()
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_stable_across_calls(self):
        profile = capture_fleet()[0]
        obj = ("v1", profile, np.arange(12.0).reshape(3, 4), {"q": 85})
        assert fingerprint(obj) == fingerprint(obj)

    def test_type_tags_prevent_collisions(self):
        assert fingerprint("1") != fingerprint(1)
        assert fingerprint(1) != fingerprint(1.0)
        assert fingerprint(True) != fingerprint(1)
        assert fingerprint(None) != fingerprint("")
        assert fingerprint(b"ab") != fingerprint("ab")

    def test_array_content_dtype_and_shape_matter(self):
        a = np.arange(6, dtype=np.float32)
        assert fingerprint(a) != fingerprint(a.astype(np.float64))
        assert fingerprint(a) != fingerprint(a.reshape(2, 3))
        b = a.copy()
        b[3] = np.nextafter(b[3], np.float32(np.inf))
        assert fingerprint(a) != fingerprint(b)
        assert fingerprint(a) == fingerprint(a.copy())

    def test_noncontiguous_array_equals_contiguous(self):
        arr = np.arange(24.0).reshape(4, 6)
        assert fingerprint(arr[:, ::2]) == fingerprint(
            np.ascontiguousarray(arr[:, ::2])
        )

    def test_dict_order_insensitive(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
        assert fingerprint({"a": 1, "b": 2}) != fingerprint({"a": 2, "b": 1})

    def test_dataclass_fields_feed_in(self):
        profile = capture_fleet()[0]
        renamed = dataclasses.replace(profile, name=profile.name + "-x")
        assert fingerprint(profile) != fingerprint(renamed)
        assert fingerprint(profile) == fingerprint(dataclasses.replace(profile))

    def test_unhashable_type_raises(self):
        with pytest.raises(TypeError):
            fingerprint(object())

    def test_unit_cache_key_sensitivity(self, small_radiance):
        profile = capture_fleet()[0]

        def key(**overrides):
            base = dict(
                kind="photograph",
                profile=profile,
                radiance=small_radiance,
                entropy=unit_entropy(0, profile.name, 0, 0),
            )
            base.update(overrides)
            return unit_cache_key(CaptureUnit(**base))

        assert key() == key()
        assert key() != key(entropy=unit_entropy(1, profile.name, 0, 0))
        assert key() != key(radiance=small_radiance * 0.5)
        assert key() != key(options={"quality": 50})
        # Option dict order must not matter.
        assert key(options={"quality": 50, "format_override": "png"}) == key(
            options={"format_override": "png", "quality": 50}
        )


# ----------------------------------------------------------------------
# CaptureCache
# ----------------------------------------------------------------------
class TestCaptureCache:
    def test_memory_roundtrip_and_stats(self):
        cache = CaptureCache()
        payload = _payload()
        assert cache.get("k") is None
        assert cache.stats.misses == 1
        cache.put("k", payload)
        assert cache.stats.stores == 1
        out = cache.get("k")
        assert cache.stats.hits == 1
        assert set(out) == set(payload)
        for name in payload:
            assert np.array_equal(out[name], payload[name])

    def test_get_returns_independent_copies(self):
        cache = CaptureCache()
        cache.put("k", _payload())
        first = cache.get("k")
        first["pixels"][:] = 0
        second = cache.get("k")
        assert not np.array_equal(first["pixels"], second["pixels"])

    def test_put_copies_its_input(self):
        cache = CaptureCache()
        payload = _payload()
        cache.put("k", payload)
        payload["pixels"][:] = 0
        assert cache.get("k")["pixels"].max() > 0

    def test_disk_roundtrip_survives_memory_clear(self, tmp_path):
        cache = CaptureCache(tmp_path / "c")
        payload = _payload()
        cache.put("deadbeef" * 8, payload)
        cache.clear_memory()
        assert len(cache) == 0
        out = cache.get("deadbeef" * 8)
        for name in payload:
            assert np.array_equal(out[name], payload[name])

    def test_disk_layout_is_sharded(self, tmp_path):
        cache = CaptureCache(tmp_path / "c")
        key = "abcd" * 16
        cache.put(key, _payload())
        assert (tmp_path / "c" / key[:2] / f"{key}.npz").is_file()

    def test_contains_checks_both_layers(self, tmp_path):
        cache = CaptureCache(tmp_path / "c")
        key = "ff" * 32
        assert key not in cache
        cache.put(key, _payload())
        assert key in cache
        cache.clear_memory()
        assert key in cache  # still on disk

    def test_torn_disk_file_is_a_miss(self, tmp_path):
        cache = CaptureCache(tmp_path / "c")
        key = "00" * 32
        path = tmp_path / "c" / key[:2] / f"{key}.npz"
        path.parent.mkdir(parents=True)
        path.write_bytes(b"PK\x03\x04 truncated garbage")
        assert cache.get(key) is None
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = CaptureCache(max_memory_items=2)
        cache.put("a", _payload())
        cache.put("b", _payload())
        cache.get("a")  # refresh "a": "b" is now least recent
        cache.put("c", _payload())
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert len(cache) == 2

    def test_memory_only_cache_forgets_on_clear(self):
        cache = CaptureCache()
        cache.put("k", _payload())
        cache.clear_memory()
        assert cache.get("k") is None

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            CaptureCache(max_memory_items=0)

    def test_rejects_cache_dir_that_is_a_file(self, tmp_path):
        clash = tmp_path / "not-a-dir"
        clash.write_text("occupied")
        with pytest.raises(ValueError, match="not a directory"):
            CaptureCache(clash)

    def test_concurrent_puts_into_one_shard_do_not_race(self, tmp_path):
        """Regression: shard-dir creation must tolerate concurrent writers.

        Many threads store keys that all land in the same (fresh) shard
        directory, so every writer races to create it; ``_ensure_dir``'s
        ``exist_ok`` + re-check must make them all succeed.
        """
        from concurrent.futures import ThreadPoolExecutor

        cache = CaptureCache(tmp_path / "c")
        keys = [f"aa{i:062x}" for i in range(16)]  # same "aa" shard

        def store(key):
            CaptureCache(tmp_path / "c").put(key, _payload())
            return key

        with ThreadPoolExecutor(max_workers=8) as pool:
            done = list(pool.map(store, keys))
        assert sorted(done) == sorted(keys)
        cache.clear_memory()
        for key in keys:
            assert cache.get(key) is not None, key

    def test_constructor_creates_cache_dir_eagerly(self, tmp_path):
        target = tmp_path / "deep" / "fleet"
        CaptureCache(target)
        assert target.is_dir()

    def test_stats_reset(self):
        cache = CaptureCache()
        cache.get("missing")
        cache.put("k", _payload())
        cache.get("k")
        cache.stats.reset()
        assert (cache.stats.hits, cache.stats.misses, cache.stats.stores) == (
            0,
            0,
            0,
        )
