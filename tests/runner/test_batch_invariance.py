"""The batch-invariance invariant: fused execution is a no-op, bitwise.

The batched executor may group units however it likes — by (phone,
scene) signature, any batch size, any submission order, serial or
pooled, cold or warm cache — and the payloads must still be
byte-for-byte what the legacy one-``execute_unit``-per-capture path
produces. The hypothesis suite drives random unit mixes through every
combination; the shared-memory regression tests pin that the pooled
fan-out no longer ships pixel buffers through pickle.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import capture_fleet
from repro.runner import (
    CaptureCache,
    CaptureUnit,
    FleetExecutor,
    execute_unit,
    group_signature,
    unit_entropy,
)
from repro.runner.shm import GroupTask, SharedArrayRef
from repro.runner.units import execute_unit_group, photograph_output_shape


@pytest.fixture(scope="module")
def scenes(small_radiance):
    """Two distinct smooth radiance fields."""
    second = np.ascontiguousarray(small_radiance[::-1, :, :])
    return [small_radiance, second]


@pytest.fixture(scope="module")
def unit_pool(scenes):
    """A fixed pool of photograph units: 2 phones x 2 scenes x 8 repeats.

    Profile 0 saves JPEG (the fully fused codec path); the iPhone XR
    saves HEIF (fused sensor+ISP, per-item codec) — so every mix drawn
    from the pool exercises both fused variants.
    """
    profiles = [capture_fleet()[0], capture_fleet()[4]]
    pool = []
    for profile in profiles:
        for scene_id, radiance in enumerate(scenes):
            for repeat in range(8):
                pool.append(
                    CaptureUnit(
                        kind="photograph",
                        profile=profile,
                        radiance=radiance,
                        entropy=unit_entropy(0, profile.name, scene_id, repeat),
                    )
                )
    return pool


@pytest.fixture(scope="module")
def reference(unit_pool):
    """Per-unit legacy payloads, the oracle every fused run must match."""
    return [execute_unit(unit) for unit in unit_pool]


def _assert_payloads_equal(actual, expected):
    assert actual.keys() == expected.keys()
    for key in expected:
        a, e = np.asarray(actual[key]), np.asarray(expected[key])
        assert a.dtype == e.dtype and a.shape == e.shape, key
        assert a.tobytes() == e.tobytes(), key


class TestBatchInvariance:
    @settings(max_examples=10, deadline=None)
    @given(
        batch_size=st.sampled_from([1, 3, 8]),
        shuffle_seed=st.integers(min_value=0, max_value=2**31 - 1),
        data=st.data(),
    )
    def test_random_mixes_serial(
        self, unit_pool, reference, batch_size, shuffle_seed, data
    ):
        """Any submitted mix, any order: fused == per-capture, bitwise."""
        indices = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(unit_pool) - 1),
                min_size=1,
                max_size=3 * batch_size,
            )
        )
        rng = np.random.default_rng(shuffle_seed)
        rng.shuffle(indices)
        executor = FleetExecutor(workers=0, batched=True)
        payloads = executor.run([unit_pool[i] for i in indices])
        for i, payload in zip(indices, payloads):
            _assert_payloads_equal(payload, reference[i])

    @pytest.mark.parametrize("workers", [0, 2])
    def test_worker_counts_and_order(self, unit_pool, reference, workers):
        """Batch sizes {1, 3, 8} x workers x shuffled submission order."""
        rng = np.random.default_rng(7)
        for batch_size in (1, 3, 8):
            indices = list(rng.integers(0, len(unit_pool), size=batch_size))
            rng.shuffle(indices)
            executor = FleetExecutor(workers=workers, batched=True)
            payloads = executor.run([unit_pool[int(i)] for i in indices])
            for i, payload in zip(indices, payloads):
                _assert_payloads_equal(payload, reference[int(i)])

    @pytest.mark.parametrize("workers", [0, 2])
    def test_warm_and_cold_cache(self, unit_pool, reference, workers, tmp_path):
        """Cold misses and warm hits both reproduce the per-unit oracle."""
        indices = [0, 8, 16, 1, 9, 0]  # duplicates: same-key units coexist
        units = [unit_pool[i] for i in indices]
        executor = FleetExecutor(
            workers=workers, cache=CaptureCache(tmp_path / "c"), batched=True
        )
        cold = executor.run(units)
        warm = executor.run(units)
        for i, cold_p, warm_p in zip(indices, cold, warm):
            _assert_payloads_equal(cold_p, reference[i])
            _assert_payloads_equal(warm_p, reference[i])

    def test_mixed_kinds_share_a_run(self, unit_pool, scenes, reference):
        """Non-photograph units ride the legacy path inside a batched run."""
        profile = capture_fleet()[0]
        raw_unit = CaptureUnit(
            kind="raw",
            profile=profile,
            radiance=scenes[0],
            entropy=unit_entropy(0, profile.name, "raw_side", 0),
        )
        units = [unit_pool[0], raw_unit, unit_pool[1]]
        expected = [reference[0], execute_unit(raw_unit), reference[1]]
        for workers in (0, 2):
            payloads = FleetExecutor(workers=workers, batched=True).run(units)
            for payload, exp in zip(payloads, expected):
                _assert_payloads_equal(payload, exp)

    def test_per_capture_mode_unchanged(self, unit_pool, reference):
        """batched=False is still the untouched baseline path."""
        executor = FleetExecutor(workers=0, batched=False)
        payloads = executor.run(unit_pool[:4])
        for payload, exp in zip(payloads, reference[:4]):
            _assert_payloads_equal(payload, exp)


class TestGrouping:
    def test_signature_partitions_repeats(self, unit_pool):
        sigs = [group_signature(u) for u in unit_pool]
        assert all(s is not None for s in sigs)
        # 2 phones x 2 scenes -> 4 distinct groups of 8 repeats each.
        assert len(set(sigs)) == 4
        for sig in set(sigs):
            assert sigs.count(sig) == 8

    def test_signature_ignores_entropy(self, unit_pool):
        a, b = unit_pool[0], unit_pool[1]
        assert a.entropy != b.entropy
        assert group_signature(a) == group_signature(b)

    def test_non_photograph_has_no_signature(self, scenes):
        profile = capture_fleet()[0]
        unit = CaptureUnit(
            kind="raw",
            profile=profile,
            radiance=scenes[0],
            entropy=unit_entropy(0, profile.name, 0),
        )
        assert group_signature(unit) is None

    def test_memoized_signature_matches_unmemoized(self, unit_pool):
        memo = {}
        for unit in unit_pool[:6]:
            assert group_signature(unit, _radiance_memo=memo) == group_signature(
                unit
            )

    def test_group_execute_matches_per_unit(self, unit_pool, reference):
        group = unit_pool[:8]  # all repeats of (phone 0, scene 0)
        payloads = execute_unit_group(group)
        for payload, exp in zip(payloads, reference[:8]):
            _assert_payloads_equal(payload, exp)


class TestSharedMemoryFanout:
    def test_group_task_is_pixel_free(self, unit_pool, scenes):
        """The pooled fan-out descriptor must not embed pixel buffers.

        This is the regression test for the shared-memory refactor: the
        per-unit IPC payload is bounded regardless of radiance size, and
        the raw pixel bytes never appear in the pickle stream.
        """
        group = unit_pool[:8]
        first = group[0]
        radiance = np.ascontiguousarray(first.radiance)
        task = GroupTask(
            profile=first.profile,
            radiance=SharedArrayRef(
                "psm_test", 0, radiance.shape, str(radiance.dtype)
            ),
            entropies=[tuple(u.entropy) for u in group],
            options=dict(first.options),
            out=SharedArrayRef(
                "psm_test_out",
                0,
                (len(group),) + photograph_output_shape(first.profile) + (3,),
                "float32",
            ),
        )
        blob = pickle.dumps(task)
        # Bounded per-unit IPC payload: a few hundred bytes per unit,
        # not the tens of KB a pickled radiance buffer would add.
        assert len(blob) < 8192
        assert len(blob) < radiance.nbytes // 10
        assert radiance.tobytes() not in blob
        # The legacy pickled unit demonstrates what the bound prevents.
        assert len(pickle.dumps(first)) > radiance.nbytes

    def test_shared_ref_nbytes(self):
        ref = SharedArrayRef("psm_x", 64, (2, 3, 4), "float32")
        assert ref.nbytes == 2 * 3 * 4 * 4

    def test_pooled_run_returns_fresh_buffers(self, unit_pool, reference):
        """Scattered payloads are private copies, not live slab views."""
        executor = FleetExecutor(workers=2, batched=True)
        payloads = executor.run(unit_pool[:8])
        for payload, exp in zip(payloads, reference[:8]):
            _assert_payloads_equal(payload, exp)
            payload["pixels"][...] = -1.0  # must not affect anything shared
        again = executor.run(unit_pool[:8])
        for payload, exp in zip(again, reference[:8]):
            _assert_payloads_equal(payload, exp)
