"""Seed derivation unit tests plus a source-level audit.

The audit half enforces the project's RNG discipline statically: no
module under ``src/repro`` may touch numpy's *global* random state
(``np.random.seed`` / ``np.random.rand`` / ``RandomState`` etc.).
Everything must flow through explicit ``default_rng`` generators or the
runner's per-unit entropy derivation — the property the parallel
executor's bit-identity guarantee rests on.

Since the ``repro.lint`` subsystem landed, the audit delegates to its
DET001 rule engine (AST-based, alias-aware, suppression-capable) rather
than duplicating the check as a regex — the rule is the single source
of truth and this test pins the repo to it.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.lint import lint_paths
from repro.runner import derive_rng, unit_entropy
from repro.runner.seeds import seed_component

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"


# ----------------------------------------------------------------------
# seed derivation
# ----------------------------------------------------------------------
class TestSeedDerivation:
    def test_components_are_stable_32bit(self):
        assert seed_component(0) == 0
        assert seed_component(2**40 + 5) == ((2**40 + 5) & 0xFFFFFFFF)
        assert seed_component(-1) == 0xFFFFFFFF
        assert seed_component("galaxy_s10") == seed_component("galaxy_s10")
        assert 0 <= seed_component("galaxy_s10") <= 0xFFFFFFFF
        assert seed_component(True) == 1
        assert seed_component(1.5) == seed_component(1.5)

    def test_component_type_errors(self):
        with pytest.raises(TypeError):
            seed_component(None)
        with pytest.raises(TypeError):
            seed_component([1, 2])

    def test_entropy_tuple_identifies_unit(self):
        base = unit_entropy(0, "phone", 3, 1)
        assert base == unit_entropy(0, "phone", 3, 1)
        assert base != unit_entropy(1, "phone", 3, 1)
        assert base != unit_entropy(0, "other", 3, 1)
        assert base != unit_entropy(0, "phone", 4, 1)
        assert base != unit_entropy(0, "phone", 3, 2)

    def test_derive_rng_reproducible(self):
        a = derive_rng(7, "phone", 0).random(16)
        b = derive_rng(7, "phone", 0).random(16)
        assert np.array_equal(a, b)

    def test_derive_rng_streams_independent(self):
        a = derive_rng(7, "phone", 0).random(16)
        b = derive_rng(7, "phone", 1).random(16)
        assert not np.array_equal(a, b)

    def test_derive_rng_matches_entropy_tuple(self):
        via_helper = derive_rng(3, "x", 2).random(8)
        via_tuple = np.random.default_rng(unit_entropy(3, "x", 2)).random(8)
        assert np.array_equal(via_helper, via_tuple)


# ----------------------------------------------------------------------
# source audit: no global RNG state anywhere in src/repro, enforced by
# the DET001 lint rule (the one place the RNG invariant is defined)
# ----------------------------------------------------------------------
def test_audit_finds_the_tree():
    report = lint_paths([SRC_ROOT], rules=("DET001",))
    assert report.files > 20, f"audit looked in the wrong place: {SRC_ROOT}"


def test_no_global_rng_via_det001():
    report = lint_paths([SRC_ROOT], rules=("DET001",))
    offenders = [f.render() for f in report.findings]
    assert not offenders, (
        "global RNG state is banned (lint rule DET001):\n" + "\n".join(offenders)
    )
    # The delegation is to the real rule, not a stub: DET001 must still
    # fire on a canary source the old regex would have caught.
    from repro.lint.context import ModuleContext
    from repro.lint.rules_determinism import NoGlobalRng

    canary = ModuleContext.parse(
        "canary.py", "lab/canary.py",
        "import numpy as np\nnp.random.seed(0)\n",
    )
    assert list(NoGlobalRng().check(canary)), "DET001 lost its teeth"
