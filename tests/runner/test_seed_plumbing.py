"""Seed derivation unit tests plus a source-level audit.

The audit half enforces the project's RNG discipline statically: no
module under ``src/repro`` may touch numpy's *global* random state
(``np.random.seed`` / ``np.random.rand`` / ``RandomState`` etc.).
Everything must flow through explicit ``default_rng`` generators or the
runner's per-unit entropy derivation — the property the parallel
executor's bit-identity guarantee rests on.
"""

import re
from pathlib import Path

import numpy as np
import pytest

from repro.runner import derive_rng, unit_entropy
from repro.runner.seeds import seed_component

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Legacy global-state numpy RNG calls, banned everywhere in src/.
BANNED = re.compile(
    r"np\.random\.(seed|rand|randn|randint|random_sample|choice|shuffle|"
    r"permutation|normal|uniform|get_state|set_state)\b"
    r"|numpy\.random\.(seed|rand|randn|randint)\b"
    r"|\bRandomState\("
)


# ----------------------------------------------------------------------
# seed derivation
# ----------------------------------------------------------------------
class TestSeedDerivation:
    def test_components_are_stable_32bit(self):
        assert seed_component(0) == 0
        assert seed_component(2**40 + 5) == ((2**40 + 5) & 0xFFFFFFFF)
        assert seed_component(-1) == 0xFFFFFFFF
        assert seed_component("galaxy_s10") == seed_component("galaxy_s10")
        assert 0 <= seed_component("galaxy_s10") <= 0xFFFFFFFF
        assert seed_component(True) == 1
        assert seed_component(1.5) == seed_component(1.5)

    def test_component_type_errors(self):
        with pytest.raises(TypeError):
            seed_component(None)
        with pytest.raises(TypeError):
            seed_component([1, 2])

    def test_entropy_tuple_identifies_unit(self):
        base = unit_entropy(0, "phone", 3, 1)
        assert base == unit_entropy(0, "phone", 3, 1)
        assert base != unit_entropy(1, "phone", 3, 1)
        assert base != unit_entropy(0, "other", 3, 1)
        assert base != unit_entropy(0, "phone", 4, 1)
        assert base != unit_entropy(0, "phone", 3, 2)

    def test_derive_rng_reproducible(self):
        a = derive_rng(7, "phone", 0).random(16)
        b = derive_rng(7, "phone", 0).random(16)
        assert np.array_equal(a, b)

    def test_derive_rng_streams_independent(self):
        a = derive_rng(7, "phone", 0).random(16)
        b = derive_rng(7, "phone", 1).random(16)
        assert not np.array_equal(a, b)

    def test_derive_rng_matches_entropy_tuple(self):
        via_helper = derive_rng(3, "x", 2).random(8)
        via_tuple = np.random.default_rng(unit_entropy(3, "x", 2)).random(8)
        assert np.array_equal(via_helper, via_tuple)


# ----------------------------------------------------------------------
# source audit: no global numpy RNG state anywhere in src/repro
# ----------------------------------------------------------------------
def _source_files():
    return sorted(SRC_ROOT.rglob("*.py"))


def test_audit_finds_the_tree():
    files = _source_files()
    assert len(files) > 20, f"audit looked in the wrong place: {SRC_ROOT}"


@pytest.mark.parametrize("path", _source_files(), ids=lambda p: str(p.relative_to(SRC_ROOT)))
def test_no_global_numpy_rng(path):
    offenders = [
        f"{path.name}:{lineno}: {line.strip()}"
        for lineno, line in enumerate(path.read_text().splitlines(), start=1)
        if BANNED.search(line)
    ]
    assert not offenders, "global numpy RNG state is banned:\n" + "\n".join(offenders)
