"""Tests for the PNG codec."""

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codecs.png import PNG_SIGNATURE, decode_png, encode_png
from repro.imaging import ImageBuffer


class TestRoundtrip:
    def test_exact_roundtrip_random(self):
        rng = np.random.default_rng(0)
        rgb = rng.integers(0, 256, (17, 23, 3), dtype=np.uint8)
        buf = ImageBuffer.from_uint8(rgb)
        out = decode_png(encode_png(buf))
        assert np.array_equal(out.to_uint8(), rgb)

    @given(
        arrays(
            np.uint8,
            st.tuples(st.integers(1, 12), st.integers(1, 12), st.just(3)),
            elements=st.integers(0, 255),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_roundtrip_property(self, rgb):
        out = decode_png(encode_png(ImageBuffer.from_uint8(rgb)))
        assert np.array_equal(out.to_uint8(), rgb)

    def test_gradient_compresses_well(self):
        # Smooth gradients are PNG filters' best case.
        grad = np.tile(np.arange(64, dtype=np.uint8) * 4, (64, 1))
        rgb = np.stack([grad, grad, grad], axis=-1)
        data = encode_png(ImageBuffer.from_uint8(rgb))
        assert len(data) < rgb.size / 4

    def test_noise_compresses_poorly(self):
        rng = np.random.default_rng(1)
        rgb = rng.integers(0, 256, (64, 64, 3), dtype=np.uint8)
        data = encode_png(ImageBuffer.from_uint8(rgb))
        assert len(data) > rgb.size * 0.9

    def test_deterministic(self):
        rng = np.random.default_rng(2)
        buf = ImageBuffer(rng.random((16, 16, 3)).astype(np.float32))
        assert encode_png(buf) == encode_png(buf)

    def test_single_pixel(self):
        buf = ImageBuffer.from_uint8(np.array([[[7, 8, 9]]], dtype=np.uint8))
        out = decode_png(encode_png(buf))
        assert out.to_uint8().tolist() == [[[7, 8, 9]]]


class TestContainer:
    def test_signature(self):
        data = encode_png(ImageBuffer.full(4, 4, 0.5))
        assert data[:8] == PNG_SIGNATURE

    def test_rejects_non_png(self):
        with pytest.raises(ValueError):
            decode_png(b"GIF89a" + b"\x00" * 20)

    def test_crc_verification(self):
        data = bytearray(encode_png(ImageBuffer.full(4, 4, 0.5)))
        # Corrupt one byte inside the IDAT payload.
        idx = data.find(b"IDAT") + 6
        data[idx] ^= 0xFF
        with pytest.raises(ValueError, match="CRC"):
            decode_png(bytes(data))

    def test_rejects_wrong_bit_depth(self):
        data = bytearray(encode_png(ImageBuffer.full(4, 4, 0.5)))
        ihdr_at = data.find(b"IHDR")
        data[ihdr_at + 12] = 16  # bit depth byte
        # Fix the CRC so we hit the depth check, not the CRC check.
        payload = bytes(data[ihdr_at : ihdr_at + 4 + 13])
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        data[ihdr_at + 17 : ihdr_at + 21] = struct.pack(">I", crc)
        with pytest.raises(ValueError, match="truecolor"):
            decode_png(bytes(data))

    def test_multiple_idat_chunks(self):
        """Decoders must concatenate split IDAT chunks."""
        buf = ImageBuffer.full(8, 8, 0.3)
        data = encode_png(buf)
        # Split the single IDAT chunk into two.
        idat_at = data.find(b"IDAT") - 4
        length = struct.unpack(">I", data[idat_at : idat_at + 4])[0]
        payload = data[idat_at + 8 : idat_at + 8 + length]
        head, tail = payload[: length // 2], payload[length // 2 :]

        def chunk(tag, body):
            crc = zlib.crc32(tag + body) & 0xFFFFFFFF
            return struct.pack(">I", len(body)) + tag + body + struct.pack(">I", crc)

        rebuilt = (
            data[:idat_at]
            + chunk(b"IDAT", head)
            + chunk(b"IDAT", tail)
            + data[idat_at + 12 + length :]
        )
        out = decode_png(rebuilt)
        assert np.array_equal(out.to_uint8(), buf.to_uint8())


class TestLosslessness:
    """PNG's exactness is what makes §7's zero-PNG-instability hold."""

    def test_bit_exact_through_many_generations(self):
        rng = np.random.default_rng(3)
        buf = ImageBuffer(rng.random((12, 12, 3)).astype(np.float32))
        current = buf
        for _ in range(3):
            current = decode_png(encode_png(current))
        assert np.array_equal(current.to_uint8(), buf.to_uint8())

    def test_all_filter_types_exercised_and_inverted(self):
        # Build an image whose rows favour different filters.
        rows = [
            np.zeros((1, 32, 3), dtype=np.uint8),  # None
            np.cumsum(np.ones((1, 32, 3), dtype=np.uint8) * 3, axis=1).astype(np.uint8),  # Sub
        ]
        rng = np.random.default_rng(4)
        rows.append(rows[1])  # Up (identical to previous)
        rows.append(rng.integers(0, 255, (1, 32, 3), dtype=np.uint8))  # noisy
        grad = np.tile(np.arange(32, dtype=np.uint8)[None, :, None], (1, 1, 3))
        rows.append(grad)  # Average/Paeth territory
        rgb = np.concatenate(rows * 3, axis=0)
        out = decode_png(encode_png(ImageBuffer.from_uint8(rgb)))
        assert np.array_equal(out.to_uint8(), rgb)
