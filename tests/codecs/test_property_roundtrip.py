"""Property-based round-trip tests for the bit-I/O and Huffman layers.

Poor-man's property testing: seeded stdlib ``random`` drives many random
trials per property (no hypothesis dependency). Each trial generates a
random program — a sequence of (value, nbits) writes or a random symbol
stream — runs it through the encoder, and asserts the decoder recovers
it exactly. A separate battery asserts malformed/truncated streams
*raise* (EOFError/ValueError) instead of looping or fabricating data.
"""

import random

import pytest

from repro.codecs.bitio import BitReader, BitWriter
from repro.codecs.huffman import (
    STD_AC_CHROMA,
    STD_AC_LUMA,
    STD_DC_CHROMA,
    STD_DC_LUMA,
    HuffmanTable,
)

TRIALS = 25


def _random_fields(rng, n):
    """Random (value, nbits) pairs, biased toward 0xFF-heavy patterns."""
    fields = []
    for _ in range(n):
        nbits = rng.randint(1, 24)
        if rng.random() < 0.25:
            value = (1 << nbits) - 1  # all-ones: exercises FF stuffing
        else:
            value = rng.randrange(1 << nbits)
        fields.append((value, nbits))
    return fields


# ----------------------------------------------------------------------
# BitWriter / BitReader
# ----------------------------------------------------------------------
class TestBitIORoundTrip:
    @pytest.mark.parametrize("stuff_ff", [False, True])
    @pytest.mark.parametrize("trial", range(TRIALS))
    def test_random_field_sequences_round_trip(self, trial, stuff_ff):
        rng = random.Random(1000 * trial + stuff_ff)
        fields = _random_fields(rng, rng.randint(1, 64))
        writer = BitWriter(stuff_ff=stuff_ff)
        for value, nbits in fields:
            writer.write_bits(value, nbits)
        writer.flush()
        data = writer.getvalue()

        reader = BitReader(data, unstuff_ff=stuff_ff)
        for value, nbits in fields:
            assert reader.read_bits(nbits) == value

    @pytest.mark.parametrize("trial", range(TRIALS))
    def test_bitwise_writes_equal_grouped_writes(self, trial):
        """Writing bit by bit must produce the same stream as field writes."""
        rng = random.Random(trial)
        fields = _random_fields(rng, rng.randint(1, 32))

        grouped = BitWriter()
        bitwise = BitWriter()
        for value, nbits in fields:
            grouped.write_bits(value, nbits)
            for shift in range(nbits - 1, -1, -1):
                bitwise.write_bits((value >> shift) & 1, 1)
        grouped.flush()
        bitwise.flush()
        assert grouped.getvalue() == bitwise.getvalue()

    def test_ff_stuffing_inserts_zero_bytes(self):
        writer = BitWriter(stuff_ff=True)
        writer.write_bits(0xFF, 8)
        writer.write_bits(0xFF, 8)
        writer.flush()
        assert writer.getvalue() == b"\xff\x00\xff\x00"

    def test_flush_pads_with_ones_by_default(self):
        writer = BitWriter()
        writer.write_bits(0, 1)
        writer.flush()
        assert writer.getvalue() == b"\x7f"

    def test_write_rejects_out_of_range_values(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(4, 2)
        with pytest.raises(ValueError):
            writer.write_bits(-1, 4)
        with pytest.raises(ValueError):
            writer.write_bits(0, -1)

    def test_getvalue_requires_flush(self):
        writer = BitWriter()
        writer.write_bits(1, 3)
        with pytest.raises(RuntimeError):
            writer.getvalue()

    def test_exhausted_stream_raises_eoferror(self):
        reader = BitReader(b"\xab")
        reader.read_bits(8)
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_truncated_stuffing_byte_raises(self):
        with pytest.raises(EOFError):
            BitReader(b"\xff", unstuff_ff=True).read_bit()

    def test_marker_inside_entropy_data_raises(self):
        # 0xFFD9 (EOI) must stop the reader, not decode as data.
        reader = BitReader(b"\xff\xd9", unstuff_ff=True)
        with pytest.raises(EOFError):
            reader.read_bit()


# ----------------------------------------------------------------------
# HuffmanTable
# ----------------------------------------------------------------------
STD_TABLES = {
    "dc_luma": STD_DC_LUMA,
    "dc_chroma": STD_DC_CHROMA,
    "ac_luma": STD_AC_LUMA,
    "ac_chroma": STD_AC_CHROMA,
}


def _roundtrip(table, symbols, stuff_ff=False):
    writer = BitWriter(stuff_ff=stuff_ff)
    for sym in symbols:
        table.encode_symbol(writer, sym)
    writer.flush()
    reader = BitReader(writer.getvalue(), unstuff_ff=stuff_ff)
    return [table.decode_symbol(reader) for _ in symbols]


class TestHuffmanRoundTrip:
    @pytest.mark.parametrize("name", sorted(STD_TABLES))
    @pytest.mark.parametrize("trial", range(5))
    def test_standard_tables_round_trip(self, name, trial):
        table = STD_TABLES[name]
        rng = random.Random(100 * trial + hash(name) % 97)
        symbols = rng.choices(table.values, k=rng.randint(1, 200))
        assert _roundtrip(table, symbols, stuff_ff=bool(trial % 2)) == symbols

    @pytest.mark.parametrize("trial", range(TRIALS))
    def test_frequency_built_tables_round_trip(self, trial):
        rng = random.Random(7000 + trial)
        alphabet = rng.sample(range(256), rng.randint(1, 40))
        freqs = {sym: rng.randint(1, 10_000) for sym in alphabet}
        table = HuffmanTable.from_frequencies(freqs)
        symbols = rng.choices(alphabet, k=rng.randint(1, 300))
        assert _roundtrip(table, symbols) == symbols

    @pytest.mark.parametrize("trial", range(TRIALS))
    def test_frequency_built_tables_satisfy_kraft(self, trial):
        rng = random.Random(31_000 + trial)
        alphabet = rng.sample(range(512), rng.randint(2, 64))
        table = HuffmanTable.from_frequencies(
            {sym: rng.randint(1, 1_000) for sym in alphabet}
        )
        kraft = sum(
            count * 2.0 ** -(length)
            for length, count in enumerate(table.bits, start=1)
        )
        assert kraft <= 1.0 + 1e-12
        assert max(
            length
            for length, count in enumerate(table.bits, start=1)
            if count
        ) <= 16

    def test_skewed_frequencies_give_short_codes_to_common_symbols(self):
        table = HuffmanTable.from_frequencies({0: 1_000_000, 1: 10, 2: 1})
        assert table.code_length(0) <= table.code_length(1) <= table.code_length(2)

    def test_single_symbol_alphabet(self):
        table = HuffmanTable.from_frequencies({42: 7})
        assert _roundtrip(table, [42, 42, 42]) == [42, 42, 42]

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            HuffmanTable(bits=[1] * 8, values=[0])  # not 16 entries
        with pytest.raises(ValueError):
            HuffmanTable(bits=[2] + [0] * 15, values=[0])  # count mismatch
        with pytest.raises(ValueError):
            HuffmanTable(bits=[3] + [0] * 15, values=[0, 1, 2])  # oversubscribed
        with pytest.raises(ValueError):
            HuffmanTable(bits=[0, 2, 0] + [0] * 13, values=[5, 5])  # duplicate
        with pytest.raises(ValueError):
            HuffmanTable.from_frequencies({})
        with pytest.raises(ValueError):
            HuffmanTable.from_frequencies({0: 0})

    def test_unknown_symbol_raises_keyerror(self):
        with pytest.raises(KeyError):
            STD_DC_LUMA.encode_symbol(BitWriter(), 0xEE)

    def test_invalid_code_raises_not_hangs(self):
        # The DC-luma table is incomplete (Kraft sum < 1), so the all-ones
        # path never reaches a symbol: decode must raise, not spin.
        with pytest.raises(ValueError):
            STD_DC_LUMA.decode_symbol(BitReader(b"\xff\xff"))

    def test_truncated_symbol_raises_eoferror(self):
        writer = BitWriter()
        STD_AC_LUMA.encode_symbol(writer, 0xFA)  # a 16-bit code
        writer.flush()
        truncated = writer.getvalue()[:1]
        with pytest.raises(EOFError):
            STD_AC_LUMA.decode_symbol(BitReader(truncated))
