"""Tests for the codec registry and the raw (DNG-like) container."""

import numpy as np
import pytest

from repro.codecs import (
    Codec,
    available_codecs,
    decode_dng,
    encode_dng,
    get_codec,
    register_codec,
    sniff_format,
)
from repro.imaging import ImageBuffer, RawImage


class TestRegistry:
    def test_builtin_codecs_present(self):
        assert {"jpeg", "png", "webp", "heif"} <= set(available_codecs())

    def test_get_unknown_raises_with_listing(self):
        with pytest.raises(KeyError, match="jpeg"):
            get_codec("avif")

    def test_lossless_flags(self):
        assert get_codec("png").lossless
        assert not get_codec("jpeg").lossless
        assert not get_codec("webp").lossless
        assert not get_codec("heif").lossless

    def test_roundtrip_helper(self):
        buf = ImageBuffer.full(16, 16, 0.4)
        out = get_codec("png").roundtrip(buf)
        assert np.array_equal(out.to_uint8(), buf.to_uint8())

    def test_register_duplicate_rejected(self):
        codec = get_codec("png")
        with pytest.raises(ValueError):
            register_codec(codec)

    def test_register_overwrite_allowed(self):
        codec = get_codec("png")
        register_codec(codec, overwrite=True)  # no error
        assert get_codec("png") is codec

    def test_register_custom(self):
        dummy = Codec(
            name="test-dummy",
            encode=lambda img: b"X",
            decode=lambda data: ImageBuffer.full(1, 1, 0.0),
            lossless=False,
        )
        register_codec(dummy, overwrite=True)
        assert "test-dummy" in available_codecs()


class TestSniff:
    def test_sniffs_all_formats(self):
        buf = ImageBuffer.full(16, 16, 0.5)
        for name in ("jpeg", "png", "webp", "heif"):
            data = get_codec(name).encode(buf)
            assert sniff_format(data) == name

    def test_sniffs_dng(self):
        raw = RawImage(np.zeros((4, 4), dtype=np.float32))
        assert sniff_format(encode_dng(raw)) == "dng"

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            sniff_format(b"BM12345678")


class TestDng:
    def test_roundtrip_preserves_mosaic(self):
        rng = np.random.default_rng(0)
        raw = RawImage(
            rng.random((8, 10)).astype(np.float32),
            pattern="GRBG",
            black_level=0.05,
            white_level=0.98,
            wb_gains=(2.0, 1.0, 1.5),
        )
        out = decode_dng(encode_dng(raw))
        assert out.pattern == "GRBG"
        assert out.black_level == pytest.approx(0.05)
        assert out.white_level == pytest.approx(0.98)
        assert out.wb_gains[0] == pytest.approx(2.0)
        # 16-bit fixed point: error bounded by half a code value.
        assert np.abs(out.mosaic - raw.mosaic).max() <= 0.5 / 65535

    def test_deterministic(self):
        raw = RawImage(np.ones((4, 4), dtype=np.float32) * 0.5)
        assert encode_dng(raw) == encode_dng(raw)

    def test_rejects_non_dng(self):
        with pytest.raises(ValueError):
            decode_dng(b"JUNKJUNKJUNK")

    def test_compresses_flat_fields(self):
        flat = RawImage(np.full((64, 64), 0.5, dtype=np.float32))
        rng = np.random.default_rng(1)
        noisy = RawImage(rng.random((64, 64)).astype(np.float32))
        assert len(encode_dng(flat)) < len(encode_dng(noisy))
