"""Tests for bit-level I/O."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_simple_byte(self):
        w = BitWriter()
        w.write_bits(0xAB, 8)
        assert w.getvalue() == b"\xab"

    def test_bit_by_bit(self):
        w = BitWriter()
        for bit in [1, 0, 1, 0, 1, 0, 1, 0]:
            w.write_bits(bit, 1)
        assert w.getvalue() == b"\xaa"

    def test_flush_pads_with_ones(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        w.flush(fill_bit=1)
        assert w.getvalue() == bytes([0b10111111])

    def test_flush_pads_with_zeros(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        w.flush(fill_bit=0)
        assert w.getvalue() == bytes([0b10100000])

    def test_value_out_of_range(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(4, 2)

    def test_negative_nbits(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(0, -1)

    def test_getvalue_requires_flush(self):
        w = BitWriter()
        w.write_bits(1, 1)
        with pytest.raises(RuntimeError):
            w.getvalue()

    def test_ff_stuffing(self):
        w = BitWriter(stuff_ff=True)
        w.write_bits(0xFF, 8)
        w.write_bits(0x01, 8)
        assert w.getvalue() == b"\xff\x00\x01"

    def test_no_stuffing_by_default(self):
        w = BitWriter()
        w.write_bits(0xFF, 8)
        assert w.getvalue() == b"\xff"

    def test_zero_bits_is_noop(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert w.getvalue() == b""


class TestBitReader:
    def test_read_bits(self):
        r = BitReader(b"\xab\xcd")
        assert r.read_bits(8) == 0xAB
        assert r.read_bits(4) == 0xC
        assert r.read_bits(4) == 0xD

    def test_read_past_end(self):
        r = BitReader(b"\x00")
        r.read_bits(8)
        with pytest.raises(EOFError):
            r.read_bit()

    def test_unstuffing(self):
        r = BitReader(b"\xff\x00\x12", unstuff_ff=True)
        assert r.read_bits(8) == 0xFF
        assert r.read_bits(8) == 0x12

    def test_marker_raises(self):
        r = BitReader(b"\xff\xd9", unstuff_ff=True)
        with pytest.raises(EOFError):
            r.read_bits(8)

    def test_bits_remaining(self):
        r = BitReader(b"\xff\x00")
        assert r.bits_remaining == 16
        r.read_bits(3)
        assert r.bits_remaining == 13


@given(st.lists(st.tuples(st.integers(0, 2**16 - 1), st.integers(1, 16)), max_size=50))
@settings(max_examples=100, deadline=None)
def test_writer_reader_roundtrip(items):
    w = BitWriter()
    for value, nbits in items:
        w.write_bits(value & ((1 << nbits) - 1), nbits)
    w.flush()
    r = BitReader(w.getvalue())
    for value, nbits in items:
        assert r.read_bits(nbits) == value & ((1 << nbits) - 1)


@given(st.binary(min_size=0, max_size=64))
@settings(max_examples=50, deadline=None)
def test_stuffed_roundtrip(raw):
    w = BitWriter(stuff_ff=True)
    for byte in raw:
        w.write_bits(byte, 8)
    w.flush()
    r = BitReader(w.getvalue(), unstuff_ff=True)
    out = bytes(r.read_bits(8) for _ in range(len(raw)))
    assert out == raw


class TestPeekWindow:
    def test_peek_does_not_consume(self):
        r = BitReader(b"\xab\xcd")
        window, avail = r.peek_window(16)
        assert (window, avail) == (0xABCD, 16)
        assert r.read_bits(16) == 0xABCD

    def test_peek_narrow_window(self):
        r = BitReader(b"\xf0")
        window, avail = r.peek_window(4)
        assert (window, avail) == (0xF, 4)
        assert r.read_bits(8) == 0xF0

    def test_peek_after_partial_read(self):
        r = BitReader(b"\xab\xcd\xef")
        r.read_bits(4)
        window, avail = r.peek_window(16)
        assert (window, avail) == (0xBCDE, 16)

    def test_peek_short_stream_zero_pads_right(self):
        r = BitReader(b"\xab")
        window, avail = r.peek_window(16)
        assert avail == 8
        assert window == 0xAB00  # real bits left-aligned, zero-padded

    def test_peek_at_eof_is_empty_not_raising(self):
        r = BitReader(b"\x55")
        assert r.read_bits(8) == 0x55
        window, avail = r.peek_window(16)
        assert (window, avail) == (0, 0)
        with pytest.raises(EOFError):
            r.read_bits(1)

    def test_peek_sees_through_stuffing(self):
        r = BitReader(b"\xff\x00\x12", unstuff_ff=True)
        window, avail = r.peek_window(16)
        assert (window, avail) == (0xFF12, 16)

    def test_peek_before_marker_returns_prefix(self):
        # 8 real bits, then a marker: peek surfaces what exists, the
        # overrunning read raises exactly as the bit-serial reader did.
        r = BitReader(b"\x34\xff\xd9", unstuff_ff=True)
        window, avail = r.peek_window(16)
        assert (window, avail) == (0x3400, 8)
        assert r.read_bits(8) == 0x34
        with pytest.raises(EOFError, match="0xFFD9"):
            r.read_bits(1)

    def test_peek_idempotent(self):
        r = BitReader(b"\x9a\xbc")
        assert r.peek_window(16) == r.peek_window(16)


@given(st.binary(min_size=0, max_size=32), st.integers(0, 40))
@settings(max_examples=100, deadline=None)
def test_peek_window_matches_read_bits(data, skip):
    ref = BitReader(data)
    try:
        ref.read_bits(skip)
    except EOFError:
        return
    window, avail = ref.peek_window(16)
    assert 0 <= avail <= 16
    checker = BitReader(data)
    checker.read_bits(skip)
    if avail:
        assert checker.read_bits(avail) == window >> (16 - avail)
    assert window & ((1 << (16 - avail)) - 1) == 0
