"""Tests for canonical Huffman coding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.bitio import BitReader, BitWriter
from repro.codecs.huffman import (
    STD_AC_CHROMA,
    STD_AC_LUMA,
    STD_DC_CHROMA,
    STD_DC_LUMA,
    HuffmanTable,
)


class TestTableConstruction:
    def test_rejects_wrong_bits_length(self):
        with pytest.raises(ValueError):
            HuffmanTable([0] * 15, [])

    def test_rejects_mismatched_values(self):
        bits = [0] * 16
        bits[0] = 1
        with pytest.raises(ValueError):
            HuffmanTable(bits, [1, 2])

    def test_rejects_duplicate_symbols(self):
        bits = [0] * 16
        bits[1] = 2
        with pytest.raises(ValueError):
            HuffmanTable(bits, [5, 5])

    def test_rejects_oversubscribed(self):
        bits = [3] + [0] * 15  # three 1-bit codes is impossible
        with pytest.raises(ValueError):
            HuffmanTable(bits, [1, 2, 3])

    def test_contains(self):
        assert 0 in STD_DC_LUMA
        assert 11 in STD_DC_LUMA
        assert 12 not in STD_DC_LUMA


class TestStandardTables:
    @pytest.mark.parametrize(
        "table,n_symbols",
        [
            (STD_DC_LUMA, 12),
            (STD_DC_CHROMA, 12),
            (STD_AC_LUMA, 162),
            (STD_AC_CHROMA, 162),
        ],
    )
    def test_symbol_counts(self, table, n_symbols):
        assert len(table.values) == n_symbols

    def test_known_dc_luma_codes(self):
        # T.81 Table K.3: category 0 -> code '00' (2 bits).
        assert STD_DC_LUMA.code_length(0) == 2
        # Category 11 gets the longest (9-bit) code.
        assert STD_DC_LUMA.code_length(11) == 9

    def test_known_ac_luma_codes(self):
        # EOB (0x00) is 4 bits; ZRL (0xF0) is 11 bits in the standard table.
        assert STD_AC_LUMA.code_length(0x00) == 4
        assert STD_AC_LUMA.code_length(0xF0) == 11

    @pytest.mark.parametrize(
        "table", [STD_DC_LUMA, STD_DC_CHROMA, STD_AC_LUMA, STD_AC_CHROMA]
    )
    def test_roundtrip_every_symbol(self, table):
        w = BitWriter()
        for symbol in table.values:
            table.encode_symbol(w, symbol)
        w.flush()
        r = BitReader(w.getvalue())
        for symbol in table.values:
            assert table.decode_symbol(r) == symbol

    def test_unknown_symbol_raises(self):
        w = BitWriter()
        with pytest.raises(KeyError):
            STD_DC_LUMA.encode_symbol(w, 99)


class TestFromFrequencies:
    def test_single_symbol(self):
        table = HuffmanTable.from_frequencies({7: 100})
        assert table.code_length(7) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HuffmanTable.from_frequencies({})

    def test_rejects_nonpositive_freq(self):
        with pytest.raises(ValueError):
            HuffmanTable.from_frequencies({1: 0})

    def test_common_symbols_get_short_codes(self):
        table = HuffmanTable.from_frequencies({0: 1000, 1: 10, 2: 10, 3: 1})
        assert table.code_length(0) < table.code_length(3)

    @given(
        st.dictionaries(
            st.integers(0, 255), st.integers(1, 10_000), min_size=1, max_size=64
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_random_alphabets(self, freqs):
        table = HuffmanTable.from_frequencies(freqs)
        symbols = sorted(freqs)
        w = BitWriter()
        for s in symbols:
            table.encode_symbol(w, s)
        w.flush()
        r = BitReader(w.getvalue())
        assert [table.decode_symbol(r) for _ in symbols] == symbols

    @given(
        st.dictionaries(
            st.integers(0, 255), st.integers(1, 10_000), min_size=2, max_size=200
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_kraft_inequality(self, freqs):
        table = HuffmanTable.from_frequencies(freqs)
        kraft = sum(2.0 ** -table.code_length(s) for s in freqs)
        assert kraft <= 1.0 + 1e-9
