"""Tests for block DCT utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codecs.dct import (
    block_dct,
    block_idct,
    block_idct_fixed_point,
    blockify,
    dct_matrix,
    unblockify,
    zigzag_order,
)


class TestDctMatrix:
    @pytest.mark.parametrize("size", [2, 4, 8, 16])
    def test_orthonormal(self, size):
        d = dct_matrix(size)
        assert np.allclose(d @ d.T, np.eye(size), atol=1e-12)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            dct_matrix(1)

    def test_dc_row_is_constant(self):
        d = dct_matrix(8)
        assert np.allclose(d[0], d[0, 0])
        assert d[0, 0] == pytest.approx(1 / np.sqrt(8))


class TestBlockify:
    def test_roundtrip(self):
        plane = np.arange(64, dtype=np.float64).reshape(8, 8)
        blocks = blockify(plane, 4)
        assert blocks.shape == (4, 4, 4)
        assert np.array_equal(unblockify(blocks, 8, 8), plane)

    def test_block_order_row_major(self):
        plane = np.zeros((4, 8))
        plane[0, 4] = 1.0  # second block of first row
        blocks = blockify(plane, 4)
        assert blocks[1, 0, 0] == 1.0

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            blockify(np.zeros((6, 8)), 4)

    def test_unblockify_rejects_bad_count(self):
        with pytest.raises(ValueError):
            unblockify(np.zeros((3, 4, 4)), 8, 8)

    def test_unblockify_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            unblockify(np.zeros((2, 4, 8)), 8, 8)


class TestBlockDct:
    @given(
        arrays(
            np.float64,
            (3, 8, 8),
            elements=st.floats(-128, 127, allow_nan=False, width=64),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_idct_inverts_dct(self, blocks):
        recovered = block_idct(block_dct(blocks))
        assert np.allclose(recovered, blocks, atol=1e-9)

    def test_constant_block_is_pure_dc(self):
        blocks = np.full((1, 8, 8), 100.0)
        coeffs = block_dct(blocks)
        assert coeffs[0, 0, 0] == pytest.approx(800.0)
        coeffs[0, 0, 0] = 0
        assert np.allclose(coeffs, 0.0, atol=1e-10)

    def test_parseval_energy_preserved(self):
        rng = np.random.default_rng(0)
        blocks = rng.normal(0, 50, (5, 8, 8))
        coeffs = block_dct(blocks)
        assert np.allclose(
            (blocks**2).sum(axis=(1, 2)), (coeffs**2).sum(axis=(1, 2)), rtol=1e-10
        )

    def test_fixed_point_close_but_not_equal(self):
        rng = np.random.default_rng(1)
        coeffs = rng.normal(0, 100, (4, 8, 8))
        ref = block_idct(coeffs)
        fixed = block_idct_fixed_point(coeffs, fraction_bits=11)
        assert np.allclose(ref, fixed, atol=0.5)
        assert not np.array_equal(ref, fixed)

    def test_lower_precision_diverges_more(self):
        rng = np.random.default_rng(2)
        coeffs = rng.normal(0, 100, (4, 8, 8))
        ref = block_idct(coeffs)
        err11 = np.abs(block_idct_fixed_point(coeffs, 11) - ref).max()
        err8 = np.abs(block_idct_fixed_point(coeffs, 8) - ref).max()
        assert err8 > err11


class TestZigzag:
    def test_is_permutation(self):
        zz = zigzag_order(8)
        assert sorted(zz.tolist()) == list(range(64))

    def test_standard_prefix(self):
        # The canonical JPEG zig-zag starts 0, 1, 8, 16, 9, 2, 3, 10 ...
        zz = zigzag_order(8)
        assert zz[:8].tolist() == [0, 1, 8, 16, 9, 2, 3, 10]

    def test_dc_first(self):
        assert zigzag_order(16)[0] == 0
