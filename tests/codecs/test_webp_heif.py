"""Tests for the WebP-like and HEIF-like codecs."""

import numpy as np
import pytest

from repro.codecs.heif import decode_heif, encode_heif
from repro.codecs.webp import decode_webp, encode_webp
from repro.imaging import ImageBuffer
from repro.imaging.metrics import psnr


def _smooth_image(seed=0, size=48):
    from scipy import ndimage

    rng = np.random.default_rng(seed)
    img = ndimage.gaussian_filter(rng.random((size, size, 3)), (3, 3, 0))
    img = (img - img.min()) / (img.max() - img.min() + 1e-9)
    return ImageBuffer(img.astype(np.float32))


@pytest.mark.parametrize(
    "encode,decode",
    [(encode_webp, decode_webp), (encode_heif, decode_heif)],
    ids=["webp", "heif"],
)
class TestCommonCodecBehaviour:
    def test_roundtrip_fidelity(self, encode, decode):
        buf = _smooth_image()
        out = decode(encode(buf, quality=90))
        assert out.shape == buf.shape
        assert psnr(buf.pixels, out.pixels) > 30.0

    def test_quality_monotonic_fidelity(self, encode, decode):
        buf = _smooth_image(seed=1)
        errs = []
        for q in (20, 60, 95):
            out = decode(encode(buf, quality=q))
            errs.append(np.mean((out.pixels - buf.pixels) ** 2))
        assert errs[0] > errs[2]

    def test_quality_monotonic_size(self, encode, decode):
        buf = _smooth_image(seed=2)
        sizes = [len(encode(buf, quality=q)) for q in (20, 95)]
        assert sizes[0] < sizes[1]

    def test_odd_dimensions(self, encode, decode):
        rng = np.random.default_rng(3)
        buf = ImageBuffer(rng.random((19, 29, 3)).astype(np.float32))
        out = decode(encode(buf, quality=80))
        assert out.shape == (19, 29, 3)

    def test_deterministic(self, encode, decode):
        buf = _smooth_image(seed=4)
        assert encode(buf, quality=70) == encode(buf, quality=70)

    def test_rejects_bad_quality(self, encode, decode):
        with pytest.raises(ValueError):
            encode(_smooth_image(), quality=0)

    def test_constant_image(self, encode, decode):
        buf = ImageBuffer.full(32, 32, 0.6)
        out = decode(encode(buf, quality=70))
        assert np.abs(out.pixels - 0.6).max() < 0.05


class TestFormatDistinctness:
    """Cross-format divergence is the mechanism behind Table 3."""

    def test_webp_heif_jpeg_artifacts_differ(self):
        from repro.codecs.jpeg import decode_jpeg, encode_jpeg

        buf = _smooth_image(seed=5)
        via_jpeg = decode_jpeg(encode_jpeg(buf, quality=75)).to_uint8()
        via_webp = decode_webp(encode_webp(buf, quality=75)).to_uint8()
        via_heif = decode_heif(encode_heif(buf, quality=75)).to_uint8()
        assert not np.array_equal(via_jpeg, via_webp)
        assert not np.array_equal(via_jpeg, via_heif)
        assert not np.array_equal(via_webp, via_heif)

    def test_magic_bytes_distinct(self):
        buf = _smooth_image(seed=6, size=32)
        assert encode_webp(buf)[:4] == b"RPWB"
        assert encode_heif(buf)[:4] == b"RPHF"

    def test_decoders_reject_cross_format(self):
        buf = _smooth_image(seed=7, size=32)
        with pytest.raises(ValueError):
            decode_webp(encode_heif(buf))
        with pytest.raises(ValueError):
            decode_heif(encode_webp(buf))


class TestWebpPrediction:
    def test_horizontal_structure_predicts_well(self):
        # Rows of constant color are horizontal-prediction's best case;
        # the coded size should beat a noise image of the same size.
        rng = np.random.default_rng(8)
        stripes = np.tile(rng.random((32, 1, 3)).astype(np.float32), (1, 32, 1))
        noise = rng.random((32, 32, 3)).astype(np.float32)
        assert len(encode_webp(ImageBuffer(stripes), quality=70)) < len(
            encode_webp(ImageBuffer(noise), quality=70)
        )


class TestHeifQuantizer:
    def test_deadzone_zeroes_small_coefficients(self):
        from repro.codecs.heif import _deadzone_quantize

        quant = np.full((16, 16), 10.0)
        coeffs = np.full((1, 16, 16), 5.0)  # 0.5 * step, below deadzone
        assert np.all(_deadzone_quantize(coeffs, quant) == 0)

    def test_large_coefficients_survive(self):
        from repro.codecs.heif import _deadzone_quantize

        quant = np.full((16, 16), 10.0)
        coeffs = np.full((1, 16, 16), 25.0)
        assert np.all(_deadzone_quantize(coeffs, quant) == 2)
