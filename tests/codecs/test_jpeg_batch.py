"""The fused JPEG roundtrip is bit-identical to encode-then-decode.

``jpeg_roundtrip_batch`` encodes a batch in one vectorized pass and
reconstructs each item's decoded pixels from the encoder's own quantized
blocks — skipping the marker parse and entropy decode entirely. Both the
file bytes and the decoded buffers must equal the serial
``encode_jpeg`` + ``decode_jpeg`` pair, for every backend, geometry,
subsampling mode, and decode option the serial path supports.
"""

import numpy as np
import pytest

from repro import kernels
from repro.codecs.jpeg import (
    JpegDecodeOptions,
    decode_jpeg,
    encode_jpeg,
    jpeg_roundtrip_batch,
)
from repro.imaging.image import ImageBuffer


def _images(shapes, seed=0):
    out = []
    for i, (h, w) in enumerate(shapes):
        rng = np.random.default_rng((seed, i))
        from scipy import ndimage

        field = ndimage.gaussian_filter(rng.random((h, w, 3)), (2, 2, 0))
        field = (field - field.min()) / max(field.max() - field.min(), 1e-9)
        out.append(ImageBuffer(field.astype(np.float32)))
    return out


@pytest.mark.parametrize("backend", kernels.BACKENDS)
@pytest.mark.parametrize("subsampling", ["4:2:0", "4:4:4"])
def test_matches_serial_roundtrip(backend, subsampling):
    images = _images([(48, 48), (48, 48), (48, 48)])
    with kernels.use_backend(backend):
        fused = jpeg_roundtrip_batch(images, quality=85, subsampling=subsampling)
        for image, (data, decoded) in zip(images, fused):
            serial_data = encode_jpeg(image, quality=85, subsampling=subsampling)
            assert data == serial_data
            serial_decoded = decode_jpeg(serial_data)
            assert decoded.pixels.tobytes() == serial_decoded.pixels.tobytes()


@pytest.mark.parametrize(
    "options",
    [
        JpegDecodeOptions(),
        JpegDecodeOptions(idct="fixed11", rounding="truncate", chroma_upsample="nearest"),
        JpegDecodeOptions(idct="fixed8"),
    ],
    ids=["default", "fixed11_truncate_nearest", "fixed8"],
)
def test_decode_options_respected(options):
    images = _images([(32, 40)])
    fused = jpeg_roundtrip_batch(images, quality=70, options=options)
    data, decoded = fused[0]
    serial = decode_jpeg(encode_jpeg(images[0], quality=70), options)
    assert decoded.pixels.tobytes() == serial.pixels.tobytes()


def test_odd_geometry():
    """Non-multiple-of-16 dimensions exercise padding and crop."""
    images = _images([(37, 53), (37, 53)], seed=3)
    for data, decoded in jpeg_roundtrip_batch(images, quality=85):
        serial = decode_jpeg(data)
        assert decoded.pixels.shape == (37, 53, 3)
        assert decoded.pixels.tobytes() == serial.pixels.tobytes()


def test_mixed_shapes_fall_back():
    """A batch of unequal shapes loops the serial path per item."""
    images = _images([(32, 32), (48, 32)], seed=5)
    fused = jpeg_roundtrip_batch(images, quality=85)
    for image, (data, decoded) in zip(images, fused):
        assert data == encode_jpeg(image, quality=85)
        assert decoded.pixels.tobytes() == decode_jpeg(data).pixels.tobytes()


def test_quality_sweep():
    images = _images([(32, 32)], seed=7)
    sizes = []
    for quality in (30, 60, 90):
        (data, decoded), = jpeg_roundtrip_batch(images, quality=quality)
        assert data == encode_jpeg(images[0], quality=quality)
        sizes.append(len(data))
    assert sizes[0] < sizes[-1]  # higher quality -> bigger file


def test_empty_batch():
    assert jpeg_roundtrip_batch([]) == []
