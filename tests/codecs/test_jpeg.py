"""Tests for the baseline JPEG codec."""

import numpy as np
import pytest

from repro.codecs.jpeg import (
    BASE_LUMA_QUANT,
    JpegDecodeOptions,
    decode_jpeg,
    encode_jpeg,
    quality_scaled_tables,
)
from repro.imaging import ImageBuffer
from repro.imaging.metrics import psnr


def _smooth_image(seed=0, size=48):
    from scipy import ndimage

    rng = np.random.default_rng(seed)
    img = ndimage.gaussian_filter(rng.random((size, size, 3)), (3, 3, 0))
    img = (img - img.min()) / (img.max() - img.min() + 1e-9)
    return ImageBuffer(img.astype(np.float32))


class TestQuantTables:
    def test_quality_50_is_base(self):
        luma, _ = quality_scaled_tables(50)
        assert np.array_equal(luma, BASE_LUMA_QUANT)

    def test_quality_100_all_ones(self):
        luma, chroma = quality_scaled_tables(100)
        assert np.all(luma == 1)
        assert np.all(chroma == 1)

    def test_lower_quality_coarser(self):
        q85, _ = quality_scaled_tables(85)
        q50, _ = quality_scaled_tables(50)
        q10, _ = quality_scaled_tables(10)
        assert np.all(q85 <= q50)
        assert np.all(q50 <= q10)
        assert q10.sum() > q50.sum()

    @pytest.mark.parametrize("quality", [0, 101, -5])
    def test_rejects_out_of_range(self, quality):
        with pytest.raises(ValueError):
            quality_scaled_tables(quality)

    def test_tables_clipped_to_255(self):
        luma, chroma = quality_scaled_tables(1)
        assert luma.max() <= 255 and chroma.max() <= 255
        assert luma.min() >= 1


class TestMarkerStream:
    def test_starts_soi_ends_eoi(self):
        data = encode_jpeg(_smooth_image(), quality=85)
        assert data[:2] == b"\xff\xd8"
        assert data[-2:] == b"\xff\xd9"

    def test_contains_jfif_app0(self):
        data = encode_jpeg(_smooth_image())
        assert b"JFIF\x00" in data[:32]

    def test_decode_rejects_non_jpeg(self):
        with pytest.raises(ValueError):
            decode_jpeg(b"\x00\x01\x02\x03")

    def test_decode_rejects_progressive(self):
        data = bytearray(encode_jpeg(_smooth_image()))
        idx = data.find(b"\xff\xc0")
        data[idx + 1] = 0xC2  # rewrite SOF0 -> SOF2
        with pytest.raises(ValueError):
            decode_jpeg(bytes(data))


class TestRoundtrip:
    @pytest.mark.parametrize("subsampling", ["4:2:0", "4:4:4"])
    def test_high_quality_high_fidelity(self, subsampling):
        buf = _smooth_image()
        out = decode_jpeg(encode_jpeg(buf, quality=95, subsampling=subsampling))
        assert out.shape == buf.shape
        assert psnr(buf.pixels, out.pixels) > 33.0

    def test_constant_image_near_exact(self):
        buf = ImageBuffer.full(32, 32, 0.5)
        out = decode_jpeg(encode_jpeg(buf, quality=90))
        assert np.abs(out.pixels - 0.5).max() < 0.02

    def test_extreme_values_survive(self):
        # All-black and all-white exercise the DC range extremes.
        for value in (0.0, 1.0):
            buf = ImageBuffer.full(16, 16, value)
            out = decode_jpeg(encode_jpeg(buf, quality=90))
            assert np.abs(out.pixels - value).max() < 0.03

    def test_non_multiple_of_16_dimensions(self):
        rng = np.random.default_rng(5)
        buf = ImageBuffer(rng.random((23, 37, 3)).astype(np.float32))
        out = decode_jpeg(encode_jpeg(buf, quality=90))
        assert out.shape == (23, 37, 3)

    def test_quality_monotonic_in_fidelity(self):
        buf = _smooth_image(seed=3)
        errors = []
        for q in (30, 60, 90):
            out = decode_jpeg(encode_jpeg(buf, quality=q))
            errors.append(np.mean((out.pixels - buf.pixels) ** 2))
        assert errors[0] > errors[1] > errors[2]

    def test_quality_monotonic_in_size(self):
        buf = _smooth_image(seed=4)
        sizes = [len(encode_jpeg(buf, quality=q)) for q in (30, 60, 90)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_444_beats_420_on_chroma_detail(self):
        # Sharp color edges suffer under 4:2:0.
        img = np.zeros((32, 32, 3), dtype=np.float32)
        img[:, ::2, 0] = 1.0
        img[:, 1::2, 2] = 1.0
        buf = ImageBuffer(img)
        e420 = decode_jpeg(encode_jpeg(buf, quality=90, subsampling="4:2:0"))
        e444 = decode_jpeg(encode_jpeg(buf, quality=90, subsampling="4:4:4"))
        err420 = np.mean((e420.pixels - img) ** 2)
        err444 = np.mean((e444.pixels - img) ** 2)
        assert err444 < err420

    def test_rejects_unknown_subsampling(self):
        with pytest.raises(ValueError):
            encode_jpeg(_smooth_image(), subsampling="4:1:1")

    def test_deterministic(self):
        buf = _smooth_image(seed=7)
        assert encode_jpeg(buf, quality=77) == encode_jpeg(buf, quality=77)


class TestDecodeOptions:
    def test_decoder_variants_differ_on_pixels(self):
        """The §7 mechanism: same bytes, different decoder, different pixels."""
        buf = _smooth_image(seed=9)
        data = encode_jpeg(buf, quality=85)
        ref = decode_jpeg(data, JpegDecodeOptions(idct="float"))
        fixed = decode_jpeg(data, JpegDecodeOptions(idct="fixed8"))
        assert ref.shape == fixed.shape
        assert not np.array_equal(ref.to_uint8(), fixed.to_uint8())
        # ...but only barely: max difference of a couple of code values.
        assert np.abs(ref.pixels - fixed.pixels).max() < 5 / 255

    def test_same_options_same_pixels(self):
        data = encode_jpeg(_smooth_image(seed=9), quality=85)
        a = decode_jpeg(data, JpegDecodeOptions(idct="fixed11"))
        b = decode_jpeg(data, JpegDecodeOptions(idct="fixed11"))
        assert np.array_equal(a.pixels, b.pixels)

    def test_rounding_variants(self):
        data = encode_jpeg(_smooth_image(seed=10), quality=85)
        rounded = decode_jpeg(data, JpegDecodeOptions(rounding="round"))
        truncated = decode_jpeg(data, JpegDecodeOptions(rounding="truncate"))
        diff = rounded.to_uint8().astype(int) - truncated.to_uint8().astype(int)
        assert diff.min() >= 0 and diff.max() <= 1
        assert diff.any()

    def test_upsample_variants_differ(self):
        data = encode_jpeg(_smooth_image(seed=11), quality=85)
        fancy = decode_jpeg(data, JpegDecodeOptions(chroma_upsample="bilinear"))
        nearest = decode_jpeg(data, JpegDecodeOptions(chroma_upsample="nearest"))
        assert not np.array_equal(fancy.pixels, nearest.pixels)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"idct": "quantum"},
            {"rounding": "ceil"},
            {"chroma_upsample": "lanczos"},
        ],
    )
    def test_rejects_unknown_options(self, kwargs):
        data = encode_jpeg(_smooth_image())
        with pytest.raises(ValueError):
            decode_jpeg(data, JpegDecodeOptions(**kwargs))
