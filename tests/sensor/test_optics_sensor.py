"""Tests for the lens model and the Bayer sensor."""

import numpy as np
import pytest

from repro.imaging import ImageBuffer
from repro.sensor.noise import SensorNoiseModel
from repro.sensor.optics import LensModel
from repro.sensor.sensor import BayerSensor, SensorConfig


class TestLensModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            LensModel(vignetting=1.0)
        with pytest.raises(ValueError):
            LensModel(blur_sigma=-1)

    def test_requires_rgb(self):
        with pytest.raises(ValueError):
            LensModel().apply(np.zeros((8, 8)))

    def test_vignetting_darkens_corners(self):
        lens = LensModel(vignetting=0.3, blur_sigma=0.0, chromatic_aberration=0.0)
        out = lens.apply(np.ones((33, 33, 3), dtype=np.float32))
        assert out[16, 16, 0] == pytest.approx(1.0, abs=1e-3)
        assert out[0, 0, 0] < 0.8

    def test_no_vignetting_identity(self):
        lens = LensModel(vignetting=0.0, blur_sigma=0.0, chromatic_aberration=0.0)
        img = np.random.default_rng(0).random((16, 16, 3)).astype(np.float32)
        assert np.allclose(lens.apply(img), img, atol=1e-6)

    def test_blur_smooths(self):
        lens = LensModel(vignetting=0.0, blur_sigma=1.5, chromatic_aberration=0.0)
        img = np.zeros((16, 16, 3), dtype=np.float32)
        img[8, 8] = 1.0
        out = lens.apply(img)
        assert out[8, 8, 0] < 0.5
        assert out[8, 9, 0] > 0.0

    def test_chromatic_aberration_separates_channels(self):
        lens = LensModel(vignetting=0.0, blur_sigma=0.0, chromatic_aberration=0.01)
        img = np.zeros((33, 33, 3), dtype=np.float32)
        img[:, 24:, :] = 1.0  # vertical edge off-center
        out = lens.apply(img)
        # Red (magnified) and blue (shrunk) edges land at different columns.
        assert not np.allclose(out[..., 0], out[..., 2], atol=1e-3)


class TestSensorConfig:
    def test_rejects_odd_resolution(self):
        with pytest.raises(ValueError):
            SensorConfig(resolution=(95, 96))

    def test_rejects_bad_pattern(self):
        with pytest.raises(ValueError):
            SensorConfig(pattern="ABCD")

    def test_rejects_bad_adc(self):
        with pytest.raises(ValueError):
            SensorConfig(adc_bits=1)

    def test_rejects_bad_exposure(self):
        with pytest.raises(ValueError):
            SensorConfig(exposure=0.0)


class TestBayerSensor:
    def _capture(self, **config_kwargs):
        config = SensorConfig(resolution=(32, 32), **config_kwargs)
        sensor = BayerSensor(config)
        img = ImageBuffer.full(48, 48, 0.5)
        return sensor.capture(img, np.random.default_rng(0))

    def test_output_shape_and_metadata(self):
        raw = self._capture()
        assert raw.mosaic.shape == (32, 32)
        assert raw.pattern == "RGGB"
        assert raw.metadata["adc_bits"] == 10

    def test_adc_quantization_levels(self):
        raw = self._capture(adc_bits=4)
        levels = np.unique(np.round(raw.mosaic * 15))
        assert np.allclose(levels, np.round(levels))
        assert len(np.unique(raw.mosaic)) <= 16

    def test_black_level_pedestal(self):
        config = SensorConfig(resolution=(32, 32), black_level=0.1)
        sensor = BayerSensor(config)
        dark = ImageBuffer.full(48, 48, 0.0)
        raw = sensor.capture(dark, np.random.default_rng(0))
        assert raw.mosaic.min() >= 0.09

    def test_channel_sensitivity_shows_in_mosaic(self):
        config = SensorConfig(
            resolution=(32, 32),
            channel_sensitivity=(0.3, 1.0, 0.3),
            noise=SensorNoiseModel(
                read_noise=0, dark_current=0, prnu=0, row_noise=0,
                full_well_electrons=1e12,
            ),
        )
        sensor = BayerSensor(config)
        raw = sensor.capture(ImageBuffer.full(48, 48, 0.8), np.random.default_rng(0))
        green = raw.mosaic[raw.channel_mask(1)].mean()
        red = raw.mosaic[raw.channel_mask(0)].mean()
        assert green > red * 1.5

    def test_wb_gains_estimated(self):
        raw = self._capture()
        assert raw.wb_gains[1] == pytest.approx(1.0)
        assert raw.wb_gains[0] > 1.0  # red-deficient sensor wants gain > 1

    def test_repeat_shots_differ(self):
        """The Fig. 1 mechanism: same display, fresh shutter, new noise."""
        sensor = BayerSensor(SensorConfig(resolution=(32, 32)))
        img = ImageBuffer.full(48, 48, 0.5)
        rng = np.random.default_rng(0)
        a = sensor.capture(img, rng)
        b = sensor.capture(img, rng)
        assert not np.array_equal(a.mosaic, b.mosaic)
        assert np.abs(a.mosaic - b.mosaic).mean() < 0.05
