"""Batched sensor capture is bit-identical to serial capture.

``BayerSensor.capture_batch(radiance, rngs)`` must reproduce, frame for
frame, exactly what ``capture(radiance, rngs[i])`` produces — same
mosaic bytes, same white-balance gains — for every fleet profile. The
noise model's ``apply_batch`` carries the same contract at the mosaic
level, including the per-generator draw order that makes this hold.
"""

import numpy as np
import pytest

from repro.devices import capture_fleet
from repro.devices.phone import Phone
from repro.imaging.image import ImageBuffer


@pytest.fixture(scope="module")
def radiance(small_radiance_sensor):
    return small_radiance_sensor


@pytest.fixture(scope="module")
def small_radiance_sensor():
    from scipy import ndimage

    rng = np.random.default_rng(21)
    field = ndimage.gaussian_filter(rng.random((48, 48, 3)), (3, 3, 0))
    field = (field - field.min()) / (field.max() - field.min())
    return ImageBuffer(field.astype(np.float32))


@pytest.mark.parametrize("profile", capture_fleet(), ids=lambda p: p.name)
def test_capture_batch_matches_serial(profile, radiance):
    phone = Phone(profile)
    serial = [
        phone.capture_raw(radiance, np.random.default_rng((5, r))) for r in range(4)
    ]
    batch = phone.capture_raw_batch(
        radiance, [np.random.default_rng((5, r)) for r in range(4)]
    )
    assert len(batch) == len(serial)
    for one, many in zip(serial, batch):
        assert one.mosaic.dtype == many.mosaic.dtype
        assert one.mosaic.tobytes() == many.mosaic.tobytes()
        assert one.pattern == many.pattern
        assert one.black_level == many.black_level
        assert one.white_level == many.white_level
        assert one.wb_gains == many.wb_gains


def test_capture_batch_empty(radiance):
    phone = Phone(capture_fleet()[0])
    assert phone.capture_raw_batch(radiance, []) == []


def test_noise_apply_batch_matches_serial():
    for profile in capture_fleet():
        noise = profile.sensor.noise
        rng = np.random.default_rng(3)
        signal = rng.random((32, 32)).astype(np.float32)
        serial = np.stack(
            [noise.apply(signal, np.random.default_rng((9, r))) for r in range(5)]
        )
        batch = noise.apply_batch(
            signal, [np.random.default_rng((9, r)) for r in range(5)]
        )
        assert batch.dtype == np.float32
        assert serial.tobytes() == batch.tobytes()


def test_noise_apply_batch_empty():
    noise = capture_fleet()[0].sensor.noise
    out = noise.apply_batch(np.zeros((8, 8), np.float32), [])
    assert out.shape == (0, 8, 8) and out.dtype == np.float32
