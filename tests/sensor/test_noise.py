"""Tests for the sensor noise models."""

import numpy as np
import pytest

from repro.sensor.noise import SensorNoiseModel


class TestValidation:
    def test_rejects_nonpositive_full_well(self):
        with pytest.raises(ValueError):
            SensorNoiseModel(full_well_electrons=0)

    @pytest.mark.parametrize(
        "field", ["read_noise", "dark_current", "prnu", "row_noise"]
    )
    def test_rejects_negative(self, field):
        with pytest.raises(ValueError):
            SensorNoiseModel(**{field: -0.01})


class TestPrnu:
    def test_fixed_pattern_is_deterministic(self):
        model = SensorNoiseModel(seed=3)
        a = model.prnu_map(16, 16)
        b = model.prnu_map(16, 16)
        assert np.array_equal(a, b)

    def test_different_sensors_different_pattern(self):
        a = SensorNoiseModel(seed=1).prnu_map(16, 16)
        b = SensorNoiseModel(seed=2).prnu_map(16, 16)
        assert not np.array_equal(a, b)

    def test_prnu_magnitude(self):
        model = SensorNoiseModel(prnu=0.01, seed=0)
        gain = model.prnu_map(200, 200)
        assert gain.std() == pytest.approx(0.01, rel=0.1)
        assert gain.mean() == pytest.approx(1.0, abs=1e-3)


class TestTemporalNoise:
    def test_repeat_captures_differ(self):
        model = SensorNoiseModel()
        signal = np.full((32, 32), 0.5, dtype=np.float32)
        rng = np.random.default_rng(0)
        a = model.apply(signal, rng)
        b = model.apply(signal, rng)
        assert not np.array_equal(a, b)

    def test_same_rng_state_reproduces(self):
        model = SensorNoiseModel()
        signal = np.full((32, 32), 0.5, dtype=np.float32)
        a = model.apply(signal, np.random.default_rng(7))
        b = model.apply(signal, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_shot_noise_scales_with_signal(self):
        """Photon statistics: brighter signal, more absolute noise."""
        model = SensorNoiseModel(read_noise=0.0, dark_current=0.0, prnu=0.0, row_noise=0.0)
        rng = np.random.default_rng(0)
        dark = model.apply(np.full((256, 256), 0.05, dtype=np.float32), rng)
        bright = model.apply(np.full((256, 256), 0.8, dtype=np.float32), rng)
        assert bright.std() > dark.std() * 2

    def test_dark_current_offsets(self):
        model = SensorNoiseModel(
            read_noise=0.0, dark_current=0.01, prnu=0.0, row_noise=0.0,
            full_well_electrons=1e9,  # suppress shot noise
        )
        out = model.apply(np.zeros((64, 64), dtype=np.float32), np.random.default_rng(0))
        assert out.mean() == pytest.approx(0.01, abs=1e-3)

    def test_row_noise_is_row_correlated(self):
        model = SensorNoiseModel(
            read_noise=0.0, dark_current=0.0, prnu=0.0, row_noise=0.01,
            full_well_electrons=1e12,
        )
        out = model.apply(np.zeros((64, 64), dtype=np.float32), np.random.default_rng(0))
        # Within a row the offset is constant.
        assert np.allclose(out.std(axis=1), 0.0, atol=1e-6)
        assert out.std() > 0.005

    def test_noiseless_configuration_is_identity_plus_prnu(self):
        model = SensorNoiseModel(
            read_noise=0.0, dark_current=0.0, prnu=0.0, row_noise=0.0,
            full_well_electrons=1e15,
        )
        signal = np.random.default_rng(1).random((16, 16)).astype(np.float32)
        out = model.apply(signal, np.random.default_rng(0))
        assert np.allclose(out, signal, atol=1e-4)
