"""CLI tests for ``python -m repro fleet``.

The default study model is monkeypatched to the untrained
input-sensitive net so the tier-1 suite never trains the quick-train
base model; the CI ``fleet-smoke`` job runs the real CLI untouched.
"""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.nn.model import micro_mobilenet


@pytest.fixture(autouse=True)
def untrained_fleet_model(monkeypatch):
    monkeypatch.setattr(
        "repro.fleet.studies.load_pretrained",
        lambda config: micro_mobilenet(num_classes=8, seed=0),
    )


class TestParser:
    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.fleet_size == 1000
        assert args.scenes == 4
        assert args.study == "capture"
        assert args.workers == 0
        assert args.spill_dir is None

    def test_fleet_flags_parse(self):
        args = build_parser().parse_args(
            [
                "fleet",
                "--fleet-size", "50",
                "--seed", "9",
                "--scenes", "3",
                "--repeats", "2",
                "--study", "both",
                "--time-steps", "4",
                "--photos", "10",
                "--format", "png",
                "--workers", "2",
                "--spill-dir", "/tmp/shards",
                "--cache-dir", "/tmp/cache",
                "--save", "/tmp/out.json",
            ]
        )
        assert args.fleet_size == 50
        assert args.study == "both"
        assert args.time_steps == 4
        assert args.format == "png"
        assert args.cache_dir == "/tmp/cache"


class TestCaptureStudyCommand:
    def test_smoke_output(self, capsys):
        assert main(["fleet", "--fleet-size", "5", "--scenes", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "fleet: 5 devices, seed 3" in out
        assert "population instability:" in out
        assert "divergence percentiles:" in out
        assert "outliers (|z| > 3.5):" in out

    def test_parallel_output_identical_to_serial(self, capsys):
        main(["fleet", "--fleet-size", "5", "--scenes", "2", "--seed", "3"])
        serial = capsys.readouterr().out
        main(
            ["fleet", "--fleet-size", "5", "--scenes", "2", "--seed", "3",
             "--workers", "2"]
        )
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_save_writes_summary_json(self, capsys, tmp_path):
        out_path = tmp_path / "fleet.json"
        main(
            ["fleet", "--fleet-size", "4", "--scenes", "2", "--seed", "1",
             "--save", str(out_path)]
        )
        payload = json.loads(out_path.read_text())
        assert payload["population"]["devices"] == 4
        assert "divergence_percentiles" in payload["population"]


class TestDriftCommand:
    def test_smoke_output(self, capsys):
        code = main(
            ["fleet", "--study", "drift", "--fleet-size", "6",
             "--time-steps", "3", "--photos", "5", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "drift over 3 steps" in out
        assert "upgraded" in out

    def test_both_runs_both_studies(self, capsys, tmp_path):
        out_path = tmp_path / "both.json"
        main(
            ["fleet", "--study", "both", "--fleet-size", "4", "--scenes", "2",
             "--time-steps", "2", "--photos", "4", "--seed", "1",
             "--save", str(out_path)]
        )
        payload = json.loads(out_path.read_text())
        assert set(payload) == {"population", "drift"}
        assert len(payload["drift"]["steps"]) == 2
