"""Property-based tests for the population generator.

The determinism contract (same seed -> bit-identical fleet; a smaller
fleet is a strict prefix of a bigger one) and the physical-envelope
invariants (every sampled parameter inside its vendor's declared range)
are checked with Hypothesis over seeds and sizes, not just one example.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.profiles import (
    CAPTURE_SPECS,
    FIREBASE_SPECS,
    capture_fleet,
    firebase_fleet,
)
from repro.fleet import (
    FleetSpec,
    ParamRange,
    Weighted,
    default_fleet_spec,
    fixed_devices,
    generate_devices,
    generate_fleet,
    sample_device,
)
from repro.runner.cache import fingerprint

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


class TestSeedDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(seed=SEEDS)
    def test_same_seed_same_fleet(self, seed):
        """Bit-identical specs, profiles, and cache fingerprints."""
        first = generate_devices(8, seed=seed)
        second = generate_devices(8, seed=seed)
        for a, b in zip(first, second):
            assert a.spec == b.spec
            assert a.profile == b.profile
            assert a.upgrade_step == b.upgrade_step
            assert fingerprint(a.profile) == fingerprint(b.profile)

    def test_different_seeds_differ(self):
        a = generate_devices(12, seed=0)
        b = generate_devices(12, seed=1)
        assert any(x.spec != y.spec for x, y in zip(a, b))

    @settings(max_examples=10, deadline=None)
    @given(seed=SEEDS, small=st.integers(1, 6), extra=st.integers(1, 6))
    def test_prefix_property(self, seed, small, extra):
        """Device i depends only on (spec, seed, i), never on fleet size."""
        short = generate_devices(small, seed=seed)
        long = generate_devices(small + extra, seed=seed)
        for a, b in zip(short, long):
            assert a.spec == b.spec
            assert a.upgrade_step == b.upgrade_step

    @settings(max_examples=10, deadline=None)
    @given(seed=SEEDS, index=st.integers(0, 999))
    def test_sample_device_is_pure(self, seed, index):
        spec = default_fleet_spec()
        a = sample_device(spec, seed, index)
        b = sample_device(spec, seed, index)
        assert a.spec == b.spec and a.upgrade_step == b.upgrade_step


class TestParameterInvariants:
    @settings(max_examples=15, deadline=None)
    @given(seed=SEEDS, index=st.integers(0, 499))
    def test_sampled_parameters_inside_vendor_ranges(self, seed, index):
        spec = default_fleet_spec()
        device = sample_device(spec, seed, index)
        vendor = next(v for v in spec.vendors if v.name == device.vendor)
        d = device.spec
        assert vendor.full_well.contains(d.full_well)
        assert vendor.read_noise.contains(d.read_noise)
        assert vendor.dark_current.contains(d.dark_current)
        assert vendor.prnu.contains(d.prnu)
        assert vendor.vignetting.contains(d.vignetting)
        assert vendor.blur.contains(d.blur)
        assert vendor.chroma_ab.contains(d.chroma_ab)
        assert vendor.red_sensitivity.contains(d.sensitivity[0])
        assert d.sensitivity[1] == 1.0
        assert vendor.blue_sensitivity.contains(d.sensitivity[2])
        assert vendor.exposure.contains(d.exposure)
        assert d.isp in vendor.isp.choices
        assert d.save_format in vendor.save_format.choices
        # Quality is rounded to int, so allow the half-unit slop.
        assert vendor.save_quality.low - 0.5 <= d.save_quality
        assert d.save_quality <= vendor.save_quality.high + 0.5
        assert d.decoder_family in vendor.decoder_family.choices
        assert device.upgrade_step >= 1
        assert d.name == f"{device.vendor}-{index:06d}"

    def test_vendor_shares_normalize(self):
        shares = default_fleet_spec().shares()
        assert pytest.approx(sum(shares)) == 1.0
        assert all(s > 0 for s in shares)


class TestValidation:
    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            ParamRange(2.0, 1.0)

    def test_weighted_misaligned_rejected(self):
        with pytest.raises(ValueError):
            Weighted(choices=("a", "b"), weights=(1.0,))
        with pytest.raises(ValueError):
            Weighted(choices=("a",), weights=(-1.0,))

    def test_unknown_isp_rejected(self):
        vendor = default_fleet_spec().vendors[0]
        from dataclasses import replace

        with pytest.raises(ValueError, match="unknown ISPs"):
            replace(vendor, isp=Weighted(choices=("no_such_isp",), weights=(1.0,)))

    def test_unknown_decoder_rejected(self):
        vendor = default_fleet_spec().vendors[0]
        from dataclasses import replace

        with pytest.raises(ValueError, match="unknown decoder"):
            replace(vendor, upgrade_decoder_family="no_such_family")

    def test_duplicate_vendor_names_rejected(self):
        vendor = default_fleet_spec().vendors[0]
        with pytest.raises(ValueError, match="duplicate"):
            FleetSpec(vendors=(vendor, vendor))

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            generate_devices(0)


class TestPaperFleetsAreDegeneratePopulations:
    """Satellite fix: one factory serves fixed fleets and the generator."""

    def test_capture_fleet_reproducible_from_specs(self):
        population = fixed_devices(CAPTURE_SPECS)
        assert [d.profile for d in population] == capture_fleet()
        for device, profile in zip(population, capture_fleet()):
            assert fingerprint(device.profile) == fingerprint(profile)

    def test_firebase_fleet_reproducible_from_specs(self):
        population = fixed_devices(FIREBASE_SPECS)
        assert [d.profile for d in population] == firebase_fleet()

    def test_fixed_devices_never_upgrade_by_default(self):
        for device in fixed_devices(CAPTURE_SPECS):
            assert device.upgrade_step == np.iinfo(np.int32).max
            assert device.upgrade_decoder_family == device.spec.decoder_family


class TestExecutorAcceptsGeneratedProfiles:
    def test_photograph_units_run_end_to_end(self):
        """Generated profiles drop into FleetExecutor unchanged."""
        from repro.runner.executor import FleetExecutor
        from repro.runner.seeds import unit_entropy
        from repro.runner.units import CaptureUnit

        profiles = generate_fleet(3, seed=5)
        ramp = np.linspace(0.1, 0.9, 96 * 96 * 3, dtype=np.float32)
        radiance = ramp.reshape(96, 96, 3)
        units = [
            CaptureUnit(
                kind="photograph",
                profile=profile,
                radiance=radiance,
                entropy=unit_entropy(5, profile.name, 0, 0),
            )
            for profile in profiles
        ]
        payloads = FleetExecutor(workers=0).run(units)
        assert len(payloads) == 3
        for payload in payloads:
            assert payload["pixels"].shape == (96, 96, 3)
            assert int(payload["encoded_size"]) > 0
