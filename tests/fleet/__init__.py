"""Tests for the synthetic device population subsystem."""
