"""Fleet study tests: determinism across workers/cache, drift structure.

Studies run here with an explicit untrained model (seed chosen so
predictions depend on input) — never :func:`repro.fleet.fleet_model`,
which would train the quick-train base model inside the tier-1 suite.
The CI ``fleet-smoke`` job exercises the trained default end to end.
"""

import json

import numpy as np
import pytest

from repro.devices.profiles import CAPTURE_SPECS, capture_fleet
from repro.fleet import (
    fixed_devices,
    run_drift_study,
    run_population_study,
)
from repro.nn.model import micro_mobilenet
from repro.runner.cache import CaptureCache


@pytest.fixture(scope="module")
def study_model():
    """Untrained but input-sensitive (seed 0; most seeds collapse)."""
    return micro_mobilenet(num_classes=8, seed=0)


def _summary_json(outcome):
    return json.dumps(outcome.summary, sort_keys=True)


class TestPopulationStudyDeterminism:
    def test_parallel_matches_serial(self, study_model):
        serial = run_population_study(
            fleet_size=6, seed=11, scenes=2, workers=0, model=study_model
        )
        parallel = run_population_study(
            fleet_size=6, seed=11, scenes=2, workers=2, model=study_model
        )
        assert np.array_equal(serial.store.table(), parallel.store.table())
        assert _summary_json(serial) == _summary_json(parallel)

    def test_cache_is_output_neutral(self, study_model, tmp_path):
        uncached = run_population_study(
            fleet_size=5, seed=2, scenes=2, model=study_model
        )
        cache = CaptureCache(tmp_path / "cache")
        cold = run_population_study(
            fleet_size=5, seed=2, scenes=2, model=study_model, cache=cache
        )
        warm = run_population_study(
            fleet_size=5, seed=2, scenes=2, model=study_model, cache=cache
        )
        assert np.array_equal(uncached.store.table(), cold.store.table())
        assert np.array_equal(cold.store.table(), warm.store.table())

    def test_summary_shape(self, study_model):
        out = run_population_study(
            fleet_size=5, seed=1, scenes=2, repeats=2, model=study_model
        )
        assert out.store.rows == 5 * 2 * 2
        summary = out.summary
        assert summary["devices"] == 5
        assert summary["records"] == 20
        assert set(summary["divergence_percentiles"]) == {
            "p5", "p25", "p50", "p75", "p90", "p95", "p99",
        }
        assert 0.0 <= summary["population_instability"] <= 1.0
        assert len(out.device_names()) == 5

    def test_spill_dir_equivalent_to_memory(self, study_model, tmp_path):
        memory = run_population_study(
            fleet_size=5, seed=6, scenes=2, model=study_model
        )
        spilled = run_population_study(
            fleet_size=5,
            seed=6,
            scenes=2,
            model=study_model,
            spill_dir=tmp_path / "shards",
            shard_rows=4,
        )
        assert len(spilled.store.shard_paths) >= 2
        assert np.array_equal(memory.store.table(), spilled.store.table())
        assert _summary_json(memory) == _summary_json(spilled)

    def test_paper_fleet_as_degenerate_population(self, study_model):
        out = run_population_study(
            devices=fixed_devices(CAPTURE_SPECS),
            scenes=2,
            seed=0,
            model=study_model,
        )
        assert out.device_names() == [p.name for p in capture_fleet()]
        assert out.summary["devices"] == 5

    def test_validation(self, study_model):
        with pytest.raises(ValueError, match="devices or fleet_size"):
            run_population_study(model=study_model)
        with pytest.raises(ValueError, match="scenes"):
            run_population_study(fleet_size=2, scenes=0, model=study_model)
        with pytest.raises(ValueError, match="repeats"):
            run_population_study(fleet_size=2, repeats=0, model=study_model)


class TestDriftStudy:
    def test_png_corpus_is_perfectly_stable(self, study_model):
        """All decoder families agree on PNG bytes — Table 5's zero row."""
        out = run_drift_study(
            fleet_size=10,
            seed=4,
            steps=3,
            photos=6,
            image_format="png",
            model=study_model,
        )
        assert [row["instability"] for row in out.step_table] == [0.0, 0.0, 0.0]
        assert [row["mean_divergence"] for row in out.step_table] == [0.0, 0.0, 0.0]

    def test_upgrade_rollout_is_monotone(self, study_model):
        out = run_drift_study(
            fleet_size=20, seed=9, steps=5, photos=4, model=study_model
        )
        fractions = [row["upgraded_fraction"] for row in out.step_table]
        assert fractions[0] == 0.0  # nobody upgrades before step 1
        assert fractions == sorted(fractions)
        assert out.store.rows == 20 * 4 * 5

    def test_deterministic_across_runs(self, study_model):
        a = run_drift_study(fleet_size=8, seed=3, steps=3, photos=4, model=study_model)
        b = run_drift_study(fleet_size=8, seed=3, steps=3, photos=4, model=study_model)
        assert np.array_equal(a.store.table(), b.store.table())
        assert a.step_table == b.step_table

    def test_fixed_fleet_never_upgrades(self, study_model):
        out = run_drift_study(
            devices=fixed_devices(CAPTURE_SPECS),
            steps=3,
            photos=4,
            model=study_model,
        )
        assert all(row["upgraded_fraction"] == 0.0 for row in out.step_table)

    def test_validation(self, study_model):
        with pytest.raises(ValueError, match="steps"):
            run_drift_study(fleet_size=2, steps=0, model=study_model)
        with pytest.raises(ValueError, match="photos"):
            run_drift_study(fleet_size=2, photos=0, model=study_model)
