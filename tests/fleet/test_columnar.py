"""Columnar store tests: round trips, spill, and the no-boxing claim.

The acceptance-critical test here is
``test_million_records_without_python_objects``: the store must hold
10^6 records as struct-array chunks (``rows * itemsize`` bytes, object
dtype rejected), never as per-record Python objects.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import ColumnarStore, read_shard, write_shard
from repro.fleet.stats import RECORD_DTYPE

REPO_ROOT = Path(__file__).resolve().parents[2]

MIXED_DTYPE = np.dtype(
    [("idx", "<i8"), ("score", "<f4"), ("count", "<u2"), ("wide", "<f8")]
)


def _mixed_table(n, seed=0):
    rng = np.random.default_rng(seed)
    table = np.empty(n, dtype=MIXED_DTYPE)
    table["idx"] = rng.integers(-(2**40), 2**40, n)
    table["score"] = rng.normal(size=n).astype(np.float32)
    table["count"] = rng.integers(0, 2**16, n)
    table["wide"] = rng.normal(size=n)
    return table


class TestShardRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(
        floats=st.lists(
            st.floats(allow_nan=False, width=32), min_size=1, max_size=32
        ),
        ints=st.integers(min_value=-(2**60), max_value=2**60),
    )
    def test_lossless_for_arbitrary_values(self, tmp_path_factory, floats, ints):
        """float32 extremes (subnormals, huge exponents) survive exactly."""
        tmp = tmp_path_factory.mktemp("shards")
        table = np.empty(len(floats), dtype=[("f", "<f4"), ("i", "<i8")])
        table["f"] = np.array(floats, dtype=np.float32)
        table["i"] = ints
        path = write_shard(table, tmp / "t.jsonl")
        back = read_shard(path)
        assert back.dtype == table.dtype
        assert np.array_equal(back["f"], table["f"])
        assert np.array_equal(back["i"], table["i"])

    def test_round_trip_mixed_dtype(self, tmp_path):
        table = _mixed_table(257)
        back = read_shard(write_shard(table, tmp_path / "m.jsonl"))
        assert back.dtype == table.dtype
        for name in table.dtype.names:
            assert np.array_equal(back[name], table[name]), name

    def test_empty_table_round_trips(self, tmp_path):
        table = _mixed_table(0)
        back = read_shard(write_shard(table, tmp_path / "e.jsonl"))
        assert back.shape == (0,) and back.dtype == table.dtype

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a repro-columnar-v1"):
            read_shard(path)

    def test_object_dtype_rejected(self, tmp_path):
        table = np.empty(2, dtype=[("x", "O")])
        with pytest.raises(ValueError, match="object-dtype"):
            write_shard(table, tmp_path / "o.jsonl")

    def test_shard_bytes_stable_across_hash_seeds(self, tmp_path):
        """Shard bytes are independent of PYTHONHASHSEED.

        The writer iterates fields in dtype order, never in set/dict
        order, so two interpreters with different hash seeds produce
        byte-identical shards for the same table.
        """
        script = """
import sys
import numpy as np
from repro.fleet import write_shard

# Assemble the dtype by iterating a *set* so that, were shard layout
# derived from iteration order anywhere, the bytes would vary.
names = {"zeta", "alpha", "mid", "beta"}
fields = [(n, "<f4") for n in sorted(names)]
table = np.zeros(9, dtype=fields)
for i, n in enumerate(sorted(names)):
    table[n] = np.arange(9, dtype=np.float32) * (i + 1) / 7.0
path = sys.argv[1]
write_shard(table, path)
"""
        outputs = set()
        for hashseed in ("0", "1", "42"):
            out = tmp_path / f"shard-{hashseed}.jsonl"
            subprocess.run(
                [sys.executable, "-c", script, str(out)],
                cwd=REPO_ROOT,
                check=True,
                env={
                    "PYTHONPATH": str(REPO_ROOT / "src"),
                    "PYTHONHASHSEED": hashseed,
                    "PATH": "/usr/bin:/bin",
                },
            )
            outputs.add(out.read_bytes())
        assert len(outputs) == 1, "shard bytes depend on PYTHONHASHSEED"


class TestStoreAppend:
    def test_append_columns_matches_append_table(self):
        table = _mixed_table(100)
        by_table = ColumnarStore(MIXED_DTYPE)
        by_table.append_table(table)
        by_columns = ColumnarStore(MIXED_DTYPE)
        by_columns.append_columns(
            **{name: table[name] for name in table.dtype.names}
        )
        assert np.array_equal(by_table.table(), by_columns.table())

    def test_wrong_dtype_rejected(self):
        store = ColumnarStore(MIXED_DTYPE)
        with pytest.raises(ValueError, match="does not match"):
            store.append_table(np.zeros(3, dtype=[("idx", "<i8")]))

    def test_missing_column_rejected(self):
        store = ColumnarStore(MIXED_DTYPE)
        with pytest.raises(ValueError, match="column mismatch"):
            store.append_columns(idx=np.arange(3))

    def test_ragged_columns_rejected(self):
        store = ColumnarStore(MIXED_DTYPE)
        with pytest.raises(ValueError, match="ragged"):
            store.append_columns(
                idx=np.arange(3),
                score=np.zeros(2, dtype=np.float32),
                count=np.zeros(3, dtype=np.uint16),
                wide=np.zeros(3),
            )

    def test_empty_append_is_noop(self):
        store = ColumnarStore(MIXED_DTYPE)
        store.append_table(_mixed_table(0))
        assert store.rows == 0 and store.nbytes == 0

    def test_object_dtype_store_rejected(self):
        with pytest.raises(ValueError, match="object-dtype"):
            ColumnarStore(np.dtype([("x", "O")]))


class TestSpill:
    def test_spill_preserves_content_and_order(self, tmp_path):
        reference = ColumnarStore(MIXED_DTYPE)
        spilling = ColumnarStore(MIXED_DTYPE, spill_dir=tmp_path, shard_rows=64)
        rng = np.random.default_rng(9)
        offset = 0
        total = 0
        # Odd-sized batches so shard boundaries split chunks mid-way.
        for size in (1, 63, 64, 65, 130, 7, 200):
            batch = _mixed_table(size, seed=offset)
            batch["idx"] = np.arange(offset, offset + size)
            offset += size
            total += size
            reference.append_table(batch)
            spilling.append_table(batch)
            del rng
            rng = np.random.default_rng(9)
        assert spilling.rows == total
        assert len(spilling.shard_paths) == total // 64
        assert np.array_equal(reference.table(), spilling.table())
        # Row order is append order even across the spill boundary.
        assert np.array_equal(spilling.table()["idx"], np.arange(total))

    def test_flush_forces_final_partial_shard(self, tmp_path):
        store = ColumnarStore(MIXED_DTYPE, spill_dir=tmp_path, shard_rows=64)
        store.append_table(_mixed_table(70))
        assert len(store.shard_paths) == 1
        store.flush()
        assert len(store.shard_paths) == 2
        assert store.nbytes == 0 and store.rows == 70
        assert sum(t.shape[0] for t in store.iter_tables()) == 70


class TestMillionRecords:
    def test_million_records_without_python_objects(self):
        """Acceptance: 10^6 records live as struct arrays, not objects."""
        store = ColumnarStore(RECORD_DTYPE)
        batch_rows = 100_000
        for batch_index in range(10):
            devices = np.arange(batch_rows, dtype=np.uint32) % 1000
            store.append_columns(
                device=devices,
                scene=np.full(batch_rows, batch_index % 4, dtype=np.uint32),
                repeat=np.zeros(batch_rows, dtype=np.uint16),
                step=np.full(batch_rows, batch_index, dtype=np.uint16),
                true_label=(devices % 8).astype(np.int16),
                predicted=((devices + batch_index) % 8).astype(np.int16),
                confidence=(devices % 101).astype(np.float32) / 100.0,
                encoded_size=(devices * 13 + 1000).astype(np.int64),
            )
        assert store.rows == 1_000_000
        # Every chunk is a fixed-width struct array; nothing is boxed.
        chunks = store.memory_chunks
        assert all(not chunk.dtype.hasobject for chunk in chunks)
        assert all(chunk.dtype == RECORD_DTYPE for chunk in chunks)
        assert store.nbytes == 1_000_000 * RECORD_DTYPE.itemsize
        stats = store.column_stats()
        assert stats["device"]["max"] == 999.0
        assert stats["confidence"]["max"] <= 1.0
