"""Statistical aggregation tests: associativity, outliers, and goldens.

Two regression layers:

* **Merge associativity** (Hypothesis): splitting a record table into
  arbitrary shards, aggregating each, and merging gives bit-identical
  integer count state to a single pass — the property that makes
  spilled-shard aggregation and future distributed aggregation exact.
  It holds because every accumulator is an integer sum (confidence in
  2^24 fixed point), never a float running total.
* **Golden outputs** (``tests/data/fleet_population_golden.json``,
  refresh with ``pytest --regen-golden``): the full population summary
  for a fixed-seed 200-device fleet over a synthetic record table, plus
  percentiles of the sampled sensor parameters. Any drift in sampling,
  consensus, percentile, or outlier arithmetic shows up as a diff here.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (
    CONF_SCALE,
    ConsensusCounts,
    DeviceStats,
    TableDims,
    aggregate_tables,
    generate_devices,
    population_summary,
    robust_outliers,
)
from repro.fleet.stats import RECORD_DTYPE
from repro.runner.seeds import derive_rng

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "fleet_population_golden.json"

DIMS = TableDims(n_devices=50, n_scenes=6, n_repeats=2, n_steps=2, n_labels=8)


def _random_table(rows, seed, dims=DIMS):
    rng = np.random.default_rng(seed)
    table = np.empty(rows, dtype=RECORD_DTYPE)
    table["device"] = rng.integers(0, dims.n_devices, rows)
    table["scene"] = rng.integers(0, dims.n_scenes, rows)
    table["repeat"] = rng.integers(0, dims.n_repeats, rows)
    table["step"] = rng.integers(0, dims.n_steps, rows)
    table["true_label"] = rng.integers(0, dims.n_labels, rows)
    table["predicted"] = rng.integers(0, dims.n_labels, rows)
    table["confidence"] = rng.random(rows, dtype=np.float32)
    table["encoded_size"] = rng.integers(500, 40000, rows)
    return table


class TestMergeAssociativity:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        rows=st.integers(1, 400),
        cuts=st.lists(st.integers(0, 400), max_size=5),
    )
    def test_sharded_equals_single_pass(self, seed, rows, cuts):
        table = _random_table(rows, seed)
        bounds = sorted({min(c, rows) for c in cuts} | {0, rows})
        shards = [
            table[a:b] for a, b in zip(bounds, bounds[1:]) if b > a
        ]

        whole = ConsensusCounts.from_table(table, DIMS)
        merged = ConsensusCounts.empty(DIMS)
        for shard in shards:
            merged = merged.merge(ConsensusCounts.from_table(shard, DIMS))
        assert np.array_equal(whole.counts, merged.counts)

        labels = whole.consensus_labels()
        stats_whole = DeviceStats.from_table(table, labels, DIMS)
        stats_merged = DeviceStats.empty(DIMS)
        for shard in shards:
            stats_merged = stats_merged.merge(
                DeviceStats.from_table(shard, labels, DIMS)
            )
        for field in ("records", "disagree", "correct", "confidence_q", "bytes_total"):
            assert np.array_equal(
                getattr(stats_whole, field), getattr(stats_merged, field)
            ), field

    def test_aggregate_tables_matches_manual(self):
        table = _random_table(300, seed=4)
        shards = [table[:100], table[100:150], table[150:]]
        consensus_a, stats_a = aggregate_tables(lambda: iter(shards), DIMS)
        consensus_b, stats_b = aggregate_tables([table], DIMS)
        assert np.array_equal(consensus_a.counts, consensus_b.counts)
        assert np.array_equal(stats_a.confidence_q, stats_b.confidence_q)


class TestConsensus:
    def test_majority_wins(self):
        dims = TableDims(n_devices=3, n_scenes=1, n_repeats=1, n_steps=1, n_labels=4)
        table = np.zeros(3, dtype=RECORD_DTYPE)
        table["device"] = [0, 1, 2]
        table["predicted"] = [2, 2, 1]
        counts = ConsensusCounts.from_table(table, dims)
        assert counts.consensus_labels().tolist() == [2]
        assert counts.disagreement_keys().tolist() == [True]

    def test_tie_breaks_to_lowest_label(self):
        dims = TableDims(n_devices=2, n_scenes=1, n_repeats=1, n_steps=1, n_labels=4)
        table = np.zeros(2, dtype=RECORD_DTYPE)
        table["device"] = [0, 1]
        table["predicted"] = [3, 1]
        counts = ConsensusCounts.from_table(table, dims)
        assert counts.consensus_labels().tolist() == [1]

    def test_unseen_key_is_minus_one(self):
        dims = TableDims(n_devices=2, n_scenes=2, n_repeats=1, n_steps=1, n_labels=4)
        table = np.zeros(1, dtype=RECORD_DTYPE)
        counts = ConsensusCounts.from_table(table, dims)
        assert counts.consensus_labels().tolist() == [0, -1]

    def test_out_of_range_fields_rejected(self):
        dims = TableDims(n_devices=2, n_scenes=1, n_repeats=1, n_steps=1, n_labels=4)
        table = np.zeros(1, dtype=RECORD_DTYPE)
        table["scene"] = 5
        with pytest.raises(ValueError):
            ConsensusCounts.from_table(table, dims)


class TestConfidenceFixedPoint:
    def test_quantized_sum_is_exact_integer_state(self):
        table = _random_table(1000, seed=1)
        labels = ConsensusCounts.from_table(table, DIMS).consensus_labels()
        stats = DeviceStats.from_table(table, labels, DIMS)
        expected = np.zeros(DIMS.n_devices, dtype=np.int64)
        for row in table:
            expected[row["device"]] += int(
                round(float(row["confidence"]) * CONF_SCALE)
            )
        assert np.array_equal(stats.confidence_q, expected)


class TestRobustOutliers:
    def test_single_extreme_flagged(self):
        values = np.array([0.1, 0.11, 0.1, 0.09, 0.1, 5.0])
        flags, z = robust_outliers(values)
        assert flags.tolist() == [False] * 5 + [True]
        assert np.isfinite(z).all()

    def test_zero_mad_falls_back_to_mean_deviation(self):
        # >50% identical values: MAD is 0, but only the far point is an
        # outlier — nearby off-median values must NOT be flagged.
        values = np.array([0.0] * 10 + [0.001, 100.0])
        flags, z = robust_outliers(values)
        assert flags.sum() == 1 and flags[-1]
        assert np.isfinite(z).all()

    def test_constant_population_has_no_outliers(self):
        flags, z = robust_outliers(np.full(9, 0.25))
        assert not flags.any()
        assert np.array_equal(z, np.zeros(9))


class TestGolden:
    """Fixed-seed 200-device fleet: percentiles and outliers are frozen."""

    def _build(self):
        devices = generate_devices(200, seed=2021)
        dims = TableDims(
            n_devices=200, n_scenes=6, n_repeats=1, n_steps=1, n_labels=8
        )
        # Synthetic records derived per-device from the population seed:
        # deterministic, but with real disagreement/outlier structure
        # (devices 0 and 7 diverge on most scenes).
        rows = []
        for device in devices:
            rng = derive_rng(2021, "fleet.golden", device.index)
            for scene in range(6):
                base = scene % 8
                flip = rng.random() < (0.6 if device.index in (0, 7) else 0.04)
                rows.append(
                    (
                        device.index,
                        scene,
                        0,
                        0,
                        base,
                        (base + 1) % 8 if flip else base,
                        round(float(rng.random()), 4),
                        int(rng.integers(1000, 30000)),
                    )
                )
        table = np.array(rows, dtype=RECORD_DTYPE)
        consensus, stats = aggregate_tables([table], dims)
        summary = population_summary(
            stats, consensus, device_names=[d.profile.name for d in devices]
        )
        params = {
            "full_well_percentiles": {
                f"p{q}": float(
                    np.percentile([d.spec.full_well for d in devices], q)
                )
                for q in (5, 50, 95)
            },
            "read_noise_percentiles": {
                f"p{q}": float(
                    np.percentile([d.spec.read_noise for d in devices], q)
                )
                for q in (5, 50, 95)
            },
            "vendor_counts": {
                vendor: sum(1 for d in devices if d.vendor == vendor)
                for vendor in sorted({d.vendor for d in devices})
            },
        }
        return {"summary": summary, "parameters": params}

    def test_population_summary_matches_golden(self, regen_golden):
        payload = json.loads(json.dumps(self._build(), sort_keys=True))
        if regen_golden:
            GOLDEN_PATH.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
            pytest.skip("golden regenerated")
        golden = json.loads(GOLDEN_PATH.read_text())
        assert payload == golden

    def test_golden_has_expected_structure(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        assert golden["summary"]["devices"] == 200
        assert golden["summary"]["records"] == 1200
        # The two planted divergent devices (indices 0 and 7) rank as the
        # strongest outliers; background flips may add a few weaker ones.
        outliers = golden["summary"]["outliers"]
        assert golden["summary"]["outlier_count"] >= 2
        assert outliers[0]["name"].endswith("-000000")
        assert outliers[1]["name"].endswith("-000007")
        assert outliers[0]["robust_z"] >= outliers[1]["robust_z"]
