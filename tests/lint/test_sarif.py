"""Shape of the SARIF 2.1.0 document emitted by ``--format sarif``."""

import json

from repro.lint import all_rules, lint_paths, to_sarif


def _report(tmp_path):
    target = tmp_path / "lab" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "import time\nimport numpy as np\n"
        "x = np.random.rand(4)\nt = time.time()\n"
    )
    return lint_paths([target], root=tmp_path)


def test_document_shape(tmp_path):
    doc = to_sarif(_report(tmp_path), all_rules())
    assert doc["version"] == "2.1.0"
    assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
    assert len(doc["runs"]) == 1

    driver = doc["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == [rule.name for rule in all_rules()]
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in ("error", "warning")


def test_results_carry_rule_level_message_and_location(tmp_path):
    doc = to_sarif(_report(tmp_path), all_rules())
    results = doc["runs"][0]["results"]
    assert sorted(r["ruleId"] for r in results) == ["DET001", "DET002"]
    for result in results:
        assert result["level"] == "error"
        assert result["message"]["text"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "lab/mod.py"
        assert location["region"]["startLine"] in (3, 4)
        assert location["region"]["startColumn"] >= 1


def test_document_is_json_serializable(tmp_path):
    doc = to_sarif(_report(tmp_path), all_rules())
    assert json.loads(json.dumps(doc)) == doc


def test_clean_report_yields_empty_results(tmp_path):
    target = tmp_path / "lab" / "clean.py"
    target.parent.mkdir(parents=True)
    target.write_text("def f(x):\n    return x + 1\n")
    doc = to_sarif(lint_paths([target], root=tmp_path), all_rules())
    assert doc["runs"][0]["results"] == []
