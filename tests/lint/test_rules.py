"""Every rule fires on its must-flag fixtures and stays quiet otherwise."""

import pytest

from repro.lint import all_rules, get_rules, lint_paths

from .corpus import CASES, case_params


def _lint_case(tmp_path, case):
    target = tmp_path / case.rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(case.source())
    return lint_paths([target], rules=(case.rule,), root=tmp_path)


@pytest.mark.parametrize(
    "case", [c for c, _ in case_params()], ids=[i for _, i in case_params()]
)
def test_corpus_case(tmp_path, case):
    report = _lint_case(tmp_path, case)
    rendered = "\n".join(f.render() for f in report.findings)
    if case.flags:
        assert report.findings, (
            f"{case.rule} must flag fixture {case.id!r} but found nothing"
        )
        assert all(f.rule == case.rule for f in report.findings), rendered
    else:
        assert not report.findings, (
            f"{case.rule} must pass fixture {case.id!r} but flagged:\n{rendered}"
        )


def test_every_rule_has_both_directions():
    """The corpus covers each registered rule with a flag and a pass case."""
    rules = {rule.name for rule in all_rules()}
    flagged = {c.rule for c in CASES if c.flags}
    passed = {c.rule for c in CASES if not c.flags}
    assert rules <= flagged, f"rules without a must-flag case: {rules - flagged}"
    assert rules <= passed, f"rules without a must-pass case: {rules - passed}"


def test_rule_selection_and_unknown_rule():
    assert [r.name for r in get_rules(("det001",))] == ["DET001"]
    with pytest.raises(KeyError):
        get_rules(("NOPE999",))


def test_findings_carry_location_and_render(tmp_path):
    case = next(c for c in CASES if c.id == "np-global-rand")
    report = _lint_case(tmp_path, case)
    finding = report.findings[0]
    assert finding.rel == case.rel
    assert finding.line == 2
    assert finding.col >= 1
    assert finding.render().startswith(f"{finding.path}:2:")
    assert "DET001" in finding.render()


def test_parse_error_is_reported_not_raised(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    report = lint_paths([bad], root=tmp_path)
    assert report.exit_code == 1
    assert report.findings[0].rule == "PARSE"


def test_ast_cache_shared_across_runs(tmp_path):
    from repro.lint import LintEngine

    target = tmp_path / "mod.py"
    target.write_text("import numpy as np\nx = np.random.rand(2)\n")
    engine = LintEngine()
    first = engine.run([target], root=tmp_path)
    assert len(engine._ast_cache) == 1
    cached_ctx = next(iter(engine._ast_cache.values()))[1]
    second = engine.run([target], root=tmp_path)
    assert next(iter(engine._ast_cache.values()))[1] is cached_ctx
    assert [f.render() for f in first.findings] == [
        f.render() for f in second.findings
    ]
