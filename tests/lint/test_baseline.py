"""Baseline parsing, round-trip, budgets, and staleness reporting."""

import pytest

from repro.lint import (
    format_baseline,
    lint_paths,
    load_baseline,
    parse_baseline,
    split_unknown_rules,
    write_baseline,
)

VIOLATION = "import numpy as np\nx = np.random.rand(4)\n"
TWO_VIOLATIONS = (
    "import numpy as np\n"
    "a = np.random.rand(4)\n"
    "b = np.random.rand(4)\n"
)


def _write(tmp_path, source, rel="lab/mod.py"):
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


class TestParsing:
    def test_comments_blanks_and_counts(self):
        text = (
            "# a justification\n"
            "\n"
            "lab/mod.py:DET001  # stray rand, tracked in #42\n"
            "core/old.py:DET003:2\n"
        )
        assert parse_baseline(text) == {
            ("lab/mod.py", "DET001"): 1,
            ("core/old.py", "DET003"): 2,
        }

    def test_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_baseline("not a baseline entry\n")
        with pytest.raises(ValueError):
            parse_baseline("a.py:DET001:zero\n")
        with pytest.raises(ValueError):
            parse_baseline("a.py:DET001:0\n")

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.txt") == {}


class TestRoundTrip:
    def test_findings_to_baseline_and_back(self, tmp_path):
        target = _write(tmp_path, TWO_VIOLATIONS)
        report = lint_paths([target], root=tmp_path)
        assert len(report.findings) == 2

        baseline_file = tmp_path / "baseline.txt"
        write_baseline(report.findings, baseline_file)
        parsed = load_baseline(baseline_file)
        assert parsed == {("lab/mod.py", "DET001"): 2}

        again = lint_paths([target], root=tmp_path, baseline=parsed)
        assert not again.findings
        assert len(again.baselined) == 2
        assert again.exit_code == 0

    def test_format_emits_counts_and_comments(self, tmp_path):
        target = _write(tmp_path, TWO_VIOLATIONS)
        report = lint_paths([target], root=tmp_path)
        text = format_baseline(report.findings)
        assert "lab/mod.py:DET001:2" in text
        assert text.startswith("#")


class TestBudgets:
    def test_excess_findings_beyond_count_still_fail(self, tmp_path):
        target = _write(tmp_path, TWO_VIOLATIONS)
        report = lint_paths(
            [target], root=tmp_path, baseline={("lab/mod.py", "DET001"): 1}
        )
        assert len(report.baselined) == 1
        assert len(report.findings) == 1
        assert report.exit_code == 1

    def test_new_finding_not_in_baseline_fails(self, tmp_path):
        target = _write(tmp_path, VIOLATION)
        report = lint_paths(
            [target], root=tmp_path, baseline={("other.py", "DET001"): 1}
        )
        assert report.exit_code == 1
        assert report.stale_baseline == (("other.py", "DET001", 1),)

    def test_stale_entries_surface_after_fix(self, tmp_path):
        target = _write(tmp_path, "x = 1\n")
        report = lint_paths(
            [target], root=tmp_path, baseline={("lab/mod.py", "DET001"): 2}
        )
        assert report.exit_code == 0
        assert report.stale_baseline == (("lab/mod.py", "DET001", 2),)


class TestUnknownRules:
    def test_split_unknown_rules_partitions_the_budget(self):
        budget = {
            ("lab/mod.py", "DET001"): 1,
            ("lab/mod.py", "GONE042"): 2,
            ("core/old.py", "NOPE999"): 1,
        }
        removed = split_unknown_rules(budget, {"DET001", "DET002"})
        assert removed == (
            ("core/old.py", "NOPE999", 1),
            ("lab/mod.py", "GONE042", 2),
        )
        assert budget == {("lab/mod.py", "DET001"): 1}

    def test_retired_rule_entry_is_reported_not_silently_stale(self, tmp_path):
        """Regression: an entry naming a rule that no longer exists used to
        sit in the budget forever — it could never match a finding, so it
        was never consumed and never surfaced as stale either. It must be
        called out explicitly so the line gets deleted."""
        target = _write(tmp_path, "x = 1\n")
        report = lint_paths(
            [target], root=tmp_path,
            baseline={("lab/mod.py", "GONE042"): 3},
        )
        assert report.exit_code == 0
        assert report.unknown_baseline == (("lab/mod.py", "GONE042", 3),)
        # Unknown-rule entries are not double-reported as merely stale.
        assert report.stale_baseline == ()
