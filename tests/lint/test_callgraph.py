"""Unit tests for the whole-program call graph (repro.lint.callgraph).

Covers the linking machinery the program rules stand on: cross-module
edge resolution through aliased imports, method resolution (attribute
types from constructor calls and annotated parameters, plus base-class
walks), cycle-safe blocking propagation, reachability traces, and the
hash-keyed summary cache.
"""

import textwrap

from repro.lint import ModuleContext, SummaryCache, build_program
from repro.lint.callgraph import module_name, source_sha


def make_program(sources, cache=None):
    """Link a Program from a {rel: source} mapping."""
    contexts = []
    for rel, src in sorted(sources.items()):
        text = textwrap.dedent(src)
        contexts.append((ModuleContext.parse(rel, rel, text), source_sha(text)))
    return build_program(contexts, cache)


def test_module_name_mirrors_the_package_layout():
    assert module_name("runner/seeds.py") == "repro.runner.seeds"
    assert module_name("serve/__init__.py") == "repro.serve"


def test_cross_module_edge_through_aliased_import():
    program = make_program({
        "lab/util.py": """
            def helper():
                return 1
        """,
        "fleet/pop.py": """
            from ..lab import util as u
            def make():
                return u.helper()
        """,
    })
    edges = program.callees("repro.fleet.pop.make")
    assert [t for _s, t in edges] == ["repro.lab.util.helper"]


def test_cycle_terminates_and_blocking_still_propagates():
    program = make_program({
        "runner/a.py": """
            import time
            def ping(n):
                return pong(n - 1) if n else 0
            def pong(n):
                time.sleep(0.1)
                return ping(n)
        """,
    })
    chain = program.blocking_chain("repro.runner.a.ping")
    assert chain == (
        "runner/a.py:ping", "runner/a.py:pong", "time.sleep",
    )
    # A blocking-free cycle settles to "does not block" rather than
    # recursing forever.
    quiet = make_program({
        "runner/b.py": """
            def even(n):
                return odd(n - 1) if n else True
            def odd(n):
                return even(n - 1) if n else False
        """,
    })
    assert quiet.blocking_chain("repro.runner.b.even") is None


def test_method_resolution_via_constructor_binding():
    program = make_program({
        "runner/exec.py": """
            class Worker:
                def work(self):
                    return 1

            class Pool:
                def __init__(self):
                    self.worker = Worker()
                def run(self):
                    return self.worker.work()
        """,
    })
    edges = program.callees("repro.runner.exec.Pool.run")
    assert [t for _s, t in edges] == ["repro.runner.exec.Worker.work"]


def test_method_resolution_via_annotated_parameter():
    program = make_program({
        "runner/cache.py": """
            class Store:
                def get(self, key):
                    return key
        """,
        "serve/svc.py": """
            from ..runner.cache import Store
            class Service:
                def __init__(self, store: Store):
                    self.store = store
                def lookup(self, key):
                    return self.store.get(key)
        """,
    })
    edges = program.callees("repro.serve.svc.Service.lookup")
    assert [t for _s, t in edges] == ["repro.runner.cache.Store.get"]


def test_inherited_method_resolves_through_base_class():
    program = make_program({
        "nn/base.py": """
            class Base:
                def forward(self, x):
                    return x
        """,
        "nn/deep.py": """
            from .base import Base
            class Deep(Base):
                def run(self, x):
                    return self.forward(x)
        """,
    })
    edges = program.callees("repro.nn.deep.Deep.run")
    assert [t for _s, t in edges] == ["repro.nn.base.Base.forward"]


def test_trace_finds_the_shortest_chain():
    program = make_program({
        "lab/flow.py": """
            def top():
                return mid()
            def mid():
                return leaf()
            def leaf():
                return 0
        """,
    })
    chain = program.trace(["repro.lab.flow.top"], "repro.lab.flow.leaf")
    assert chain == ["lab/flow.py:top", "lab/flow.py:mid", "lab/flow.py:leaf"]
    assert program.trace(["repro.lab.flow.leaf"], "repro.lab.flow.top") is None


def test_summary_cache_round_trips_and_invalidates_on_edit(tmp_path):
    sources = {
        "lab/util.py": "def helper():\n    return 1\n",
        "fleet/pop.py": (
            "from ..lab import util as u\n"
            "def make():\n    return u.helper()\n"
        ),
    }
    cold = make_program(sources, SummaryCache(tmp_path))
    assert cold.stats["cache_misses"] == 2
    assert cold.stats["cache_hits"] == 0

    warm = make_program(sources, SummaryCache(tmp_path))
    assert warm.stats["cache_hits"] == 2
    assert warm.stats["cache_misses"] == 0
    # Reloaded summaries link to the same graph.
    assert warm.stats["edges"] == cold.stats["edges"]
    assert [t for _s, t in warm.callees("repro.fleet.pop.make")] == [
        "repro.lab.util.helper"
    ]

    # Editing one module invalidates only that module's entry.
    sources["lab/util.py"] = "def helper():\n    return 2\n"
    touched = make_program(sources, SummaryCache(tmp_path))
    assert touched.stats["cache_hits"] == 1
    assert touched.stats["cache_misses"] == 1


def test_sibling_modules_with_same_function_name_link_exactly():
    """Exact qualified-name resolution: two sibling modules both define
    ``helper``; each caller's edge lands on its *own* import, and a call
    through an unbound name links nowhere (the old suffix-index matcher
    would have guessed)."""
    program = make_program({
        "runner/util.py": """
            def helper():
                return 1
        """,
        "fleet/util.py": """
            def helper():
                return 2
        """,
        "runner/job.py": """
            from .util import helper
            def run():
                return helper()
        """,
        "fleet/pop.py": """
            from ..fleet import util
            def grow():
                return util.helper()
        """,
        "serve/svc.py": """
            import importlib
            def handle():
                util = importlib.import_module("x")
                return util.helper()
        """,
    })
    assert [t for _s, t in program.callees("repro.runner.job.run")] == [
        "repro.runner.util.helper"
    ]
    assert [t for _s, t in program.callees("repro.fleet.pop.grow")] == [
        "repro.fleet.util.helper"
    ]
    assert [t for _s, t in program.callees("repro.serve.svc.handle")] == [None, None]


def test_resolution_chases_package_reexports():
    """``from ..runner import Store`` where runner/__init__ re-exports
    Store from runner/cache.py resolves to the defining module."""
    program = make_program({
        "runner/cache.py": """
            class Store:
                def get(self, key):
                    return key
        """,
        "runner/__init__.py": """
            from .cache import Store
        """,
        "serve/svc.py": """
            from ..runner import Store
            class Service:
                def __init__(self, store: Store):
                    self.store = store
                def lookup(self, key):
                    return self.store.get(key)
        """,
    })
    edges = program.callees("repro.serve.svc.Service.lookup")
    assert [t for _s, t in edges] == ["repro.runner.cache.Store.get"]


def test_cold_and_warm_summaries_agree_on_tensor_facts(tmp_path):
    """The v2 cache round-trips the tensor fields bit-for-bit: contract,
    inferred return, forwarded-call marker, and every event."""
    sources = {
        "isp/stage.py": """
            import numpy as np
            from repro.lint.contracts import tensor_contract

            @tensor_contract("(H, W) float32, _ -> (H, W) float32")
            def gain(mosaic, k):
                scale = np.float64(2.0)
                return (mosaic * scale).astype(np.float32)
        """,
        "isp/wrap.py": """
            from repro.isp.stage import gain
            def call(mosaic):
                return gain(mosaic, 2)
        """,
    }
    cold = make_program(sources, SummaryCache(tmp_path))
    warm = make_program(sources, SummaryCache(tmp_path))
    assert cold.stats["cache_misses"] == 2 and warm.stats["cache_hits"] == 2
    for key in ("repro.isp.stage.gain", "repro.isp.wrap.call"):
        assert warm.functions[key].tensor == cold.functions[key].tensor
    tensor = warm.functions["repro.isp.stage.gain"].tensor
    assert tensor.contract == "(H, W) float32, _ -> (H, W) float32"
    assert [e.kind for e in tensor.events] == ["promotion"]
    assert warm.functions["repro.isp.wrap.call"].tensor.returns_call == (
        "repro.isp.stage.gain"
    )
