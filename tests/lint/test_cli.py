"""``python -m repro lint`` CLI behaviour: exit codes, formats, flags."""

import json

import pytest


def run_cli(*argv):
    """Invoke the real CLI in-process; returns the exit code."""
    from repro.__main__ import main

    try:
        code = main(list(argv))
    except SystemExit as exc:
        code = exc.code
    return code or 0


@pytest.fixture
def clean_file(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text(
        "import numpy as np\n\n\n"
        "def sample(seed):\n"
        "    rng = np.random.default_rng(seed)\n"
        "    return rng.random(3)\n"
    )
    return target


@pytest.fixture
def dirty_file(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text(
        "import time\nimport numpy as np\n"
        "x = np.random.rand(4)\nt = time.time()\n"
    )
    return target


def test_clean_file_exits_zero(clean_file, capsys):
    assert run_cli("lint", str(clean_file)) == 0
    assert "ok: 0 finding(s)" in capsys.readouterr().out


def test_violations_exit_nonzero_with_locations(dirty_file, capsys):
    assert run_cli("lint", str(dirty_file)) == 1
    out = capsys.readouterr().out
    assert f"{dirty_file}:3:" in out
    assert "DET001" in out and "DET002" in out
    assert out.strip().endswith("across 1 file(s)")


def test_json_format(dirty_file, capsys):
    assert run_cli("lint", str(dirty_file), "--format", "json") == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["exit_code"] == 1
    assert sorted(f["rule"] for f in payload["findings"]) == ["DET001", "DET002"]
    assert payload["files"] == 1


def test_rule_filter(dirty_file, capsys):
    assert run_cli("lint", str(dirty_file), "--rule", "DET002") == 1
    out = capsys.readouterr().out
    assert "DET002" in out and "DET001" not in out
    assert run_cli("lint", str(dirty_file), "--rule", "MUT001") == 0


def test_unknown_rule_is_usage_error(clean_file, capsys):
    assert run_cli("lint", str(clean_file), "--rule", "NOPE999") == 2
    assert "unknown rule" in capsys.readouterr().out


def test_missing_target_is_usage_error(tmp_path, capsys):
    assert run_cli("lint", str(tmp_path / "absent.py")) == 2
    assert "does not exist" in capsys.readouterr().out


def test_list_rules(capsys):
    assert run_cli("lint", "--list-rules") == 0
    out = capsys.readouterr().out
    for rule in (
        "DET001", "DET002", "DET003", "MUT001", "OBS001", "PROC001",
        "SEED001", "ASY001", "ASY002", "ASY003", "PUR002",
    ):
        assert rule in out


def test_write_baseline_then_gate_passes(dirty_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.txt"
    assert (
        run_cli(
            "lint", str(dirty_file), "--baseline", str(baseline),
            "--write-baseline",
        )
        == 0
    )
    assert baseline.is_file()
    capsys.readouterr()
    assert run_cli("lint", str(dirty_file), "--baseline", str(baseline)) == 0
    out = capsys.readouterr().out
    assert "2 baselined" in out
    # --no-baseline reports everything again.
    assert (
        run_cli(
            "lint", str(dirty_file), "--baseline", str(baseline), "--no-baseline"
        )
        == 1
    )


def test_malformed_baseline_is_usage_error(clean_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("this is not an entry\n")
    assert run_cli("lint", str(clean_file), "--baseline", str(baseline)) == 2


def test_stats_flag_prints_analysis_cost(clean_file, capsys):
    assert run_cli("lint", str(clean_file), "--stats") == 0
    out = capsys.readouterr().out
    assert "stats: 1 file(s) analyzed in" in out
    assert "call graph:" in out


def test_sarif_format(dirty_file, capsys):
    assert run_cli("lint", str(dirty_file), "--format", "sarif") == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert sorted(r["ruleId"] for r in run["results"]) == ["DET001", "DET002"]


def test_cache_dir_warm_run_matches_cold(dirty_file, tmp_path, capsys):
    cache = tmp_path / "cache"
    args = ("lint", str(dirty_file), "--format", "json",
            "--cache-dir", str(cache))
    assert run_cli(*args) == 1
    cold = json.loads(capsys.readouterr().out)
    assert run_cli(*args) == 1
    warm = json.loads(capsys.readouterr().out)
    # Identical findings cold vs. warm; the warm run served every
    # summary from the on-disk cache.
    assert warm["findings"] == cold["findings"]
    assert cold["stats"]["callgraph"]["cache_misses"] == 1
    assert warm["stats"]["callgraph"]["cache_hits"] == 1
    assert warm["stats"]["callgraph"]["cache_misses"] == 0


def test_unknown_baseline_rule_is_reported(clean_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("whatever.py:GONE042: 2\n")
    assert run_cli("lint", str(clean_file), "--baseline", str(baseline)) == 0
    out = capsys.readouterr().out
    assert "names an unknown rule" in out
    assert "GONE042" in out
