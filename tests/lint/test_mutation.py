"""Mutation tests: seeded regressions in the *real* tree are caught.

These are the acceptance checks for the whole-program passes: copy
``src/repro`` into a scratch directory, inject one realistic violation,
and assert the lint gate reports exactly that one finding with the
right rule id and a cross-module trace a reader can follow.
"""

import ast
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.lint import lint_paths

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"


@pytest.fixture
def tree(tmp_path):
    """A scratch copy of the shipped package (lints clean as copied)."""
    target = tmp_path / "repro"
    shutil.copytree(SRC_ROOT, target)
    return target


def _inject(tree, rel, qualname, code):
    """Insert ``code`` as the first body statements of ``qualname``
    (dotted ``Class.method`` or plain function name) in ``tree/rel``."""
    path = tree / rel
    source = path.read_text()
    node = ast.parse(source)
    for part in qualname.split("."):
        node = next(
            child for child in ast.walk(node)
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and child.name == part
        )
    first = node.body[0]
    indent = " " * first.col_offset
    lines = source.splitlines(keepends=True)
    insert = "".join(
        indent + line + "\n" for line in textwrap.dedent(code).strip().splitlines()
    )
    lines.insert(first.lineno - 1, insert)
    path.write_text("".join(lines))


def _lint(tree, rule):
    return lint_paths([tree], rules=(rule,), root=tree)


def test_literal_rng_on_a_capture_path_trips_seed001(tree):
    _inject(
        tree, "devices/phone.py", "Phone.photograph",
        "rng = np.random.default_rng(7)",
    )
    report = _lint(tree, "SEED001")
    assert [f.rule for f in report.findings] == ["SEED001"]
    finding = report.findings[0]
    assert finding.rel == "devices/phone.py"
    assert "literal" in finding.message
    assert "reachable from the capture path" in finding.message
    assert "devices/phone.py:Phone.photograph" in finding.message


def test_sleep_in_async_serve_handler_trips_asy001(tree):
    _inject(
        tree, "serve/service.py", "IngestService._process",
        "import time\ntime.sleep(0.001)",
    )
    report = _lint(tree, "ASY001")
    assert [f.rule for f in report.findings] == ["ASY001"]
    finding = report.findings[0]
    assert finding.rel == "serve/service.py"
    assert "time.sleep" in finding.message


def test_unshielded_executor_call_trips_asy001_transitively(tree):
    """Calling the sync fleet executor without the run_in_executor shim
    blocks the loop four modules away from the primitive — the chain in
    the message walks the whole way down."""
    _inject(
        tree, "serve/service.py", "IngestService._process",
        "self.executor.run([])",
    )
    report = _lint(tree, "ASY001")
    assert [f.rule for f in report.findings] == ["ASY001"]
    finding = report.findings[0]
    assert "serve/service.py:IngestService._process" in finding.message
    assert "runner/executor.py:FleetExecutor.run" in finding.message
    assert "runner/cache.py:CaptureCache.get -> numpy.load" in finding.message


def test_unmutated_copy_lints_clean(tree):
    report = lint_paths([tree], root=tree)
    rendered = "\n".join(f.render() for f in report.findings)
    assert not report.findings, rendered


def test_float64_promotion_in_a_demosaic_trips_num001(tree):
    """A default-float64 scalar slipped into the Malvar demosaic widens
    the whole plane; NUM001 pins the promotion site and walks the chain
    from the capture roots down to it."""
    _inject(
        tree, "isp/stages.py", "_malvar_demosaic",
        "mosaic = mosaic * np.float64(1.0)",
    )
    report = _lint(tree, "NUM001")
    assert [f.rule for f in report.findings] == ["NUM001"]
    finding = report.findings[0]
    assert finding.rel == "isp/stages.py"
    assert "float32" in finding.message and "float64" in finding.message
    assert "reachable from the capture path" in finding.message
    assert "isp/stages.py:_malvar_demosaic" in finding.message


def test_batch_axis_reduction_under_contract_trips_shape001(tree):
    """Batch-normalizing across the declared batch axis inside a
    contracted entry point is exactly the cross-item coupling SHAPE001
    exists to forbid: one caller's image changes another's prediction."""
    _inject(
        tree, "nn/model.py", "Model.predict_proba",
        "x = x - x.mean(axis=0)",
    )
    report = _lint(tree, "SHAPE001")
    assert [f.rule for f in report.findings] == ["SHAPE001"]
    finding = report.findings[0]
    assert finding.rel == "nn/model.py"
    assert "batch" in finding.message.lower()
    assert "(N, ?, ?, ?) float32" in finding.message
