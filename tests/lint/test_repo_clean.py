"""The gate itself: the real tree lints clean, violations would not.

This is the acceptance contract of the CI ``lint`` job: ``python -m
repro lint`` exits 0 on the repository as committed (with the shipped —
currently empty — baseline), and a seeded violation anywhere in the
linted set flips the exit code.
"""

from pathlib import Path

from repro.lint import all_rules, lint_paths
from repro.lint.cli import default_baseline_path, default_target

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_default_target_is_the_package():
    assert default_target() == SRC_ROOT


def test_repo_lints_clean_with_all_rules():
    report = lint_paths([SRC_ROOT])
    rendered = "\n".join(f.render() for f in report.findings)
    assert not report.findings, f"repo must lint clean:\n{rendered}"
    assert report.files > 50, "lint walked suspiciously few files"


def test_shipped_baseline_is_empty():
    """The baseline carries no grandfathered findings; deviations are
    suppressed inline next to their justification comments."""
    from repro.lint import load_baseline

    path = default_baseline_path()
    assert path is not None, "lint-baseline.txt missing from the repo root"
    assert load_baseline(path) == {}


def test_seeded_violation_fails_the_gate(tmp_path):
    scratch = tmp_path / "scratch.py"
    scratch.write_text("import numpy as np\nx = np.random.rand(3)\n")
    report = lint_paths([SRC_ROOT, scratch])
    assert report.exit_code == 1
    assert [f.rule for f in report.findings] == ["DET001"]


def test_one_seeded_violation_per_rule_fails(tmp_path):
    """Each rule can individually flip the repo-wide gate."""
    seeded = {
        "DET001": ("lab/x.py", "import numpy as np\nx = np.random.rand(1)\n"),
        "DET002": ("lab/x.py", "import time\nt = time.time()\n"),
        "DET003": ("lab/x.py", "for v in {1, 2}:\n    print(v)\n"),
        "MUT001": ("imaging/x.py", "def f(a):\n    a *= 2\n    return a\n"),
        "OBS001": (
            "runner/x.py",
            "from repro import obs\ndef f():\n    return obs.active()\n",
        ),
        "PROC001": ("nn/x.py", "_MEMO = {}\n"),
        "SEED001": (
            "fleet/x.py",
            "import numpy as np\nrng = np.random.default_rng(0)\n",
        ),
        "ASY001": (
            "serve/x.py",
            "import time\nasync def f():\n    time.sleep(1)\n",
        ),
        "ASY002": (
            "serve/x.py",
            "async def f(lock, q):\n"
            "    async with lock:\n"
            "        return await q.get()\n",
        ),
        "ASY003": (
            "serve/x.py",
            "import asyncio\n"
            "async def g():\n    pass\n"
            "async def f():\n    asyncio.create_task(g())\n",
        ),
        "PUR002": (
            "codecs/x.py",
            "from repro import obs\ndef f():\n    return obs.active()\n",
        ),
        "NUM001": (
            "runner/x.py",
            "import numpy as np\n"
            "def f():\n"
            "    a = np.zeros((4, 4), dtype=np.float32)\n"
            "    return a * np.float64(2.0)\n",
        ),
        "NUM002": (
            "fleet/x.py",
            "import numpy as np\n"
            "def f():\n"
            "    img = np.zeros((8, 8), dtype=np.float32)\n"
            "    return img.sum()\n",
        ),
        "SHAPE001": (
            "isp/x.py",
            "from repro.lint.contracts import tensor_contract\n"
            "@tensor_contract('(N, H, W) float32 -> _')\n"
            "def f(batch):\n"
            "    return batch.mean(axis=0)\n",
        ),
    }
    assert set(seeded) == {rule.name for rule in all_rules()}
    for rule, (rel, code) in sorted(seeded.items()):
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(code)
        report = lint_paths([target], rules=(rule,), root=tmp_path)
        assert report.exit_code == 1, f"{rule} did not fire on its seed"
        assert len(report.findings) == 1, (
            f"{rule} must catch its seed with exactly one finding, got: "
            + "; ".join(f.render() for f in report.findings)
        )
