"""Property tests for the tensor abstract domains (repro.lint.lattice).

The dataflow interpreter leans on ``join`` being a real lattice join —
commutative, associative, idempotent, and an upper bound — so loop and
branch merges converge regardless of visit order. Hypothesis pins those
laws over the whole domain, plus the text codec the summary cache uses.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.lint.lattice import (
    BOTTOM,
    DTYPES,
    TOP,
    TOP_VALUE,
    AbstractValue,
    Shape,
    decode_value,
    dtype_from_name,
    encode_value,
)

dtypes = st.sampled_from(DTYPES)
dims = st.one_of(
    st.none(),
    st.integers(min_value=0, max_value=9),
    st.sampled_from(["N", "H", "W", "C", "K", "S"]),
)
shapes = st.one_of(
    st.just(Shape(None)),
    st.lists(dims, max_size=4).map(tuple).map(Shape),
)
values = st.builds(AbstractValue, dtype=dtypes, shape=shapes, weak=st.booleans())


# ----------------------------------------------------------------------
# Dtype chain
# ----------------------------------------------------------------------
@given(dtypes, dtypes)
def test_dtype_join_is_commutative(a, b):
    assert a.join(b) == b.join(a)


@given(dtypes, dtypes, dtypes)
def test_dtype_join_is_associative(a, b, c):
    assert a.join(b).join(c) == a.join(b.join(c))


@given(dtypes)
def test_dtype_join_is_idempotent_with_bottom_and_top(a):
    assert a.join(a) == a
    assert a.join(BOTTOM) == a
    assert a.join(TOP) == TOP


@given(dtypes, dtypes)
def test_dtype_join_is_an_upper_bound(a, b):
    joined = a.join(b)
    assert joined.level >= a.level and joined.level >= b.level


def test_numpy_spellings_collapse_onto_the_chain():
    assert dtype_from_name("uint8") == dtype_from_name("int64")
    assert dtype_from_name("np.float32") == dtype_from_name("single")
    assert dtype_from_name("no_such_dtype") == TOP


# ----------------------------------------------------------------------
# Full abstract values (dtype x shape x weakness, joined pointwise)
# ----------------------------------------------------------------------
@given(values, values)
def test_value_join_is_commutative(a, b):
    assert a.join(b) == b.join(a)


@given(values, values, values)
def test_value_join_is_associative(a, b, c):
    assert a.join(b).join(c) == a.join(b.join(c))


@given(values)
def test_value_join_is_idempotent_and_top_absorbs(a):
    assert a.join(a) == a
    assert a.join(TOP_VALUE) == TOP_VALUE


@given(values, values)
def test_joined_shape_never_invents_precision(a, b):
    """The merged shape keeps a dim only where both sides agree."""
    joined = a.join(b).shape
    if joined.dims is None:
        return
    assert a.shape.dims is not None and b.shape.dims is not None
    for merged, left, right in zip(joined.dims, a.shape.dims, b.shape.dims):
        assert merged == left == right or merged is None


@given(values, values)
def test_weakness_survives_only_weak_meets_weak(a, b):
    assert a.join(b).weak == (a.weak and b.weak)


# ----------------------------------------------------------------------
# Text codec (what summaries.json stores)
# ----------------------------------------------------------------------
@given(values)
def test_encode_decode_round_trips(value):
    assert decode_value(encode_value(value)) == value
