"""Fixture corpus: minimal good/bad snippets per lint rule.

Each :class:`Case` is one module the engine lints in isolation (only
the case's rule enabled), written to ``<tmp>/<rel>`` so path-scoped
rules see the right location. Every rule has at least one must-flag and
one must-pass case; ``tests/lint/test_rules.py`` asserts both
directions.
"""

from dataclasses import dataclass
from textwrap import dedent


@dataclass(frozen=True)
class Case:
    rule: str
    id: str
    rel: str  #: path relative to the fake package root
    code: str
    flags: bool  #: True = the rule must fire, False = it must stay quiet

    def source(self) -> str:
        return dedent(self.code).lstrip("\n")


CASES = [
    # ------------------------------------------------------------ DET001
    Case("DET001", "np-global-rand", "scenes/gen.py", """
        import numpy as np
        x = np.random.rand(4)
    """, True),
    Case("DET001", "np-global-shuffle", "mitigation/mix.py", """
        import numpy as np
        np.random.shuffle([1, 2, 3])
    """, True),
    Case("DET001", "unseeded-default-rng", "lab/warmup.py", """
        import numpy as np
        rng = np.random.default_rng()
    """, True),
    Case("DET001", "stdlib-random", "lab/pick.py", """
        import random
        v = random.random()
    """, True),
    Case("DET001", "os-urandom", "runner/token.py", """
        import os
        b = os.urandom(8)
    """, True),
    Case("DET001", "legacy-randomstate", "nn/legacy.py", """
        import numpy as np
        rs = np.random.RandomState(0)
    """, True),
    Case("DET001", "seeded-default-rng-ok", "scenes/gen.py", """
        import numpy as np
        rng = np.random.default_rng(7)
    """, False),
    Case("DET001", "seeds-module-exempt", "runner/seeds.py", """
        import numpy as np
        def fresh():
            return np.random.default_rng()
    """, False),
    Case("DET001", "generator-method-ok", "sensor/noise.py", """
        def sample(rng):
            return rng.random(3)
    """, False),
    # ------------------------------------------------------------ DET002
    Case("DET002", "time-time", "lab/clockish.py", """
        import time
        t = time.time()
    """, True),
    Case("DET002", "datetime-now", "mitigation/stamp.py", """
        from datetime import datetime
        now = datetime.now()
    """, True),
    Case("DET002", "uuid4", "runner/ids.py", """
        import uuid
        u = uuid.uuid4()
    """, True),
    Case("DET002", "builtin-hash", "runner/keys.py", """
        key = hash("cache-key")
    """, True),
    Case("DET002", "obs-exempt", "obs/trace.py", """
        import time
        t0 = time.perf_counter()
    """, False),
    Case("DET002", "sleep-ok", "lab/pace.py", """
        import time
        time.sleep(0.01)
    """, False),
    Case("DET002", "crc32-ok", "runner/keys.py", """
        from zlib import crc32
        key = crc32(b"cache-key")
    """, False),
    # ------------------------------------------------------------ DET003
    Case("DET003", "for-over-set", "core/order.py", """
        for x in {"b", "a"}:
            print(x)
    """, True),
    Case("DET003", "list-of-set", "lab/names.py", """
        def uniq(names):
            return list(set(names))
    """, True),
    Case("DET003", "join-keys", "runner/keyfmt.py", """
        def render(d):
            return ",".join(d.keys())
    """, True),
    Case("DET003", "comprehension-keys", "devices/walk.py", """
        def labels(d):
            return [k.upper() for k in d.keys()]
    """, True),
    Case("DET003", "set-algebra", "core/merge.py", """
        def both(a, b):
            for item in set(a) | set(b):
                yield item
    """, True),
    Case("DET003", "strict-items", "core/serialize.py", """
        def dump(d):
            return {k: v for k, v in d.items()}
    """, True),
    Case("DET003", "strict-values", "obs/report.py", """
        def totals(d):
            return [v for v in d.values()]
    """, True),
    Case("DET003", "sorted-set-ok", "core/order.py", """
        for x in sorted({"b", "a"}):
            print(x)
    """, False),
    Case("DET003", "sum-of-set-ok", "core/stats.py", """
        def total(xs):
            return sum(set(xs))
    """, False),
    Case("DET003", "nonstrict-items-ok", "lab/iterate.py", """
        def walk(d):
            for k, v in d.items():
                print(k, v)
    """, False),
    Case("DET003", "strict-sorted-items-ok", "core/serialize.py", """
        def dump(d):
            return {k: v for k, v in sorted(d.items())}
    """, False),
    # ------------------------------------------------------------ MUT001
    Case("MUT001", "augassign-param", "imaging/ops.py", """
        def scale(x):
            x *= 2
            return x
    """, True),
    Case("MUT001", "subscript-write", "codecs/block.py", """
        def zero_dc(block):
            block[0] = 0
            return block
    """, True),
    Case("MUT001", "out-kwarg", "isp/stages.py", """
        import numpy as np
        def clamp(a):
            np.clip(a, 0.0, 1.0, out=a)
            return a
    """, True),
    Case("MUT001", "mutating-method", "imaging/stack.py", """
        def push(frames, frame):
            frames.append(frame)
    """, True),
    Case("MUT001", "rebind-ok", "imaging/ops.py", """
        def scale(x):
            x = x * 2
            return x
    """, False),
    Case("MUT001", "copy-then-write-ok", "codecs/block.py", """
        def zero_dc(block):
            out = block.copy()
            out[0] = 0
            return out
    """, False),
    Case("MUT001", "out-of-scope-module-ok", "nn/train.py", """
        def scale(x):
            x *= 2
            return x
    """, False),
    Case("MUT001", "self-attribute-ok", "codecs/bitio.py", """
        class Writer:
            def push(self, n):
                self.total += n
    """, False),
    # ------------------------------------------------------------ OBS001
    Case("OBS001", "count-result-used", "runner/hooked.py", """
        from repro import obs
        def f():
            x = obs.count("n")
            return 1
    """, True),
    Case("OBS001", "span-not-with", "runner/hooked.py", """
        from repro import obs
        def f():
            s = obs.span("region")
            return 1
    """, True),
    Case("OBS001", "obs-in-return", "devices/hooked.py", """
        from repro import obs
        def f():
            return obs.active()
    """, True),
    Case("OBS001", "relative-import-flags", "runner/hooked.py", """
        from .. import obs
        def f():
            return obs.is_enabled()
    """, True),
    Case("OBS001", "canonical-pattern-ok", "runner/hooked.py", """
        from repro import obs
        def f(work):
            with obs.span("region", n=len(work)):
                out = [w * 2 for w in work]
            obs.count("fleet.units_executed")
            obs.gauge("fleet.width", 4)
            obs.observe("unit.bytes", 123.0)
            return out
    """, False),
    Case("OBS001", "active-assignment-ok", "runner/hooked.py", """
        from repro import obs
        def f():
            observer = obs.active()
            if observer is None:
                return 0
            return 1
    """, False),
    Case("OBS001", "no-obs-import-ok", "runner/plain.py", """
        def f(obs):
            return obs.span("not the real module")
    """, False),
    # ----------------------------------------------------------- PROC001
    Case("PROC001", "empty-module-dict", "nn/memo.py", """
        _CACHE = {}
    """, True),
    Case("PROC001", "empty-module-list", "lab/queue.py", """
        pending = []
    """, True),
    Case("PROC001", "defaultdict", "devices/tally.py", """
        from collections import defaultdict
        counts = defaultdict(list)
    """, True),
    Case("PROC001", "global-rebind", "lab/counter.py", """
        _calls = 0
        def bump():
            global _calls
            _calls = _calls + 1
    """, True),
    Case("PROC001", "constant-table-ok", "devices/tables.py", """
        FAMILIES = {"adreno": 1, "mali": 2}
    """, False),
    Case("PROC001", "function-local-ok", "nn/memo.py", """
        def collect():
            out = {}
            out["k"] = 1
            return out
    """, False),
    Case("PROC001", "obs-exempt", "obs/state.py", """
        _ACTIVE = None
        def activate(ob):
            global _ACTIVE
            _ACTIVE = ob
    """, False),
    # ----------------------------------------------------------- SEED001
    Case("SEED001", "literal-seed", "fleet/pop.py", """
        import numpy as np
        def make():
            rng = np.random.default_rng(0)
            return rng.random(3)
    """, True),
    Case("SEED001", "wallclock-seed", "scenes/shuffle.py", """
        import time
        import numpy as np
        def make():
            rng = np.random.default_rng(int(time.time()))
            return rng.random(3)
    """, True),
    Case("SEED001", "untracked-seed", "mitigation/remix.py", """
        import numpy as np
        def make():
            rng = np.random.default_rng(mystery_seed())
            return rng.random(3)
    """, True),
    Case("SEED001", "second-source", "sensor/blend.py", """
        import numpy as np
        def blend(rng, seed):
            extra = np.random.default_rng(seed)
            return rng.random(3) + extra.random(3)
    """, True),
    Case("SEED001", "bare-derive", "fleet/ids.py", """
        from ..runner.seeds import derive_rng
        def make(master):
            return derive_rng(master)
    """, True),
    Case("SEED001", "literal-through-local", "lab/setup.py", """
        import numpy as np
        def make():
            seed = 1234
            rng = np.random.default_rng(seed)
            return rng.random(3)
    """, True),
    Case("SEED001", "param-seed-ok", "scenes/gen.py", """
        import numpy as np
        def make(seed):
            rng = np.random.default_rng(seed)
            return rng.random(3)
    """, False),
    Case("SEED001", "attr-seed-ok", "sensor/noise.py", """
        import numpy as np
        def make(config):
            rng = np.random.default_rng(config.seed)
            return rng.random(3)
    """, False),
    Case("SEED001", "derived-ok", "fleet/pop.py", """
        from ..runner.seeds import derive_rng
        def make(master, unit_id):
            rng = derive_rng(master, unit_id)
            return rng.random(3)
    """, False),
    Case("SEED001", "closure-param-ok", "bench/cases.py", """
        import numpy as np
        def build(seed):
            def prep():
                return np.random.default_rng(seed)
            return prep
    """, False),
    Case("SEED001", "seeds-module-exempt", "runner/seeds.py", """
        import numpy as np
        def bootstrap():
            return np.random.default_rng(0xC0FFEE)
    """, False),
    # ------------------------------------------------------------ ASY001
    Case("ASY001", "direct-sleep", "serve/slowpath.py", """
        import time
        async def handle():
            time.sleep(0.5)
    """, True),
    Case("ASY001", "transitive-blocking", "serve/chained.py", """
        import numpy as np
        def load_weights(path):
            return np.load(path)
        async def handle(path):
            return load_weights(path)
    """, True),
    Case("ASY001", "sync-open", "loadgen/reader.py", """
        async def handle(path):
            with open(path) as fh:
                return fh.read()
    """, True),
    Case("ASY001", "future-result", "serve/waiters.py", """
        async def handle(fut):
            return fut.result()
    """, True),
    Case("ASY001", "executor-shim-ok", "serve/shimmed.py", """
        import time
        async def handle(loop):
            await loop.run_in_executor(None, lambda: time.sleep(0.5))
    """, False),
    Case("ASY001", "async-sleep-ok", "serve/paced.py", """
        import asyncio
        async def handle():
            await asyncio.sleep(0.5)
    """, False),
    Case("ASY001", "sync-context-ok", "runner/batch.py", """
        import time
        def pace():
            time.sleep(0.5)
    """, False),
    # ------------------------------------------------------------ ASY002
    Case("ASY002", "lock-across-await", "serve/guarded.py", """
        async def handle(lock, queue):
            async with lock:
                item = await queue.get()
            return item
    """, True),
    Case("ASY002", "threading-lock-constructor", "serve/shared.py", """
        import threading
        async def handle(queue):
            with threading.Lock():
                return await queue.get()
    """, True),
    Case("ASY002", "await-outside-lock-ok", "serve/guarded.py", """
        async def handle(lock, queue):
            item = await queue.get()
            async with lock:
                count = item + 1
            return count
    """, False),
    Case("ASY002", "non-lock-context-ok", "serve/session.py", """
        async def handle(session, queue):
            async with session:
                return await queue.get()
    """, False),
    # ------------------------------------------------------------ ASY003
    Case("ASY003", "bare-create-task", "serve/spawner.py", """
        import asyncio
        async def tick():
            pass
        async def handle():
            asyncio.create_task(tick())
    """, True),
    Case("ASY003", "bare-ensure-future", "loadgen/fired.py", """
        import asyncio
        async def tick():
            pass
        async def handle():
            asyncio.ensure_future(tick())
    """, True),
    Case("ASY003", "referenced-task-ok", "serve/tracked.py", """
        import asyncio
        async def tick():
            pass
        async def handle():
            task = asyncio.create_task(tick())
            await task
    """, False),
    # ------------------------------------------------------------ PUR002
    Case("PUR002", "measurement-value-used", "codecs/counted.py", """
        from repro import obs
        def encode(data):
            n = obs.count("codec.calls")
            return data + [n]
    """, True),
    Case("PUR002", "obs-in-return", "isp/hooked.py", """
        from repro import obs
        def demosaic(raw):
            return obs.active()
    """, True),
    Case("PUR002", "write-only-ok", "codecs/counted.py", """
        from repro import obs
        def encode(data):
            with obs.span("codec.encode"):
                out = list(data)
            obs.count("codec.calls")
            return out
    """, False),
    Case("PUR002", "handle-assignment-ok", "kernels/hooked.py", """
        from repro import obs
        def run(block):
            ob = obs.active()
            if ob is not None:
                ob.metrics.count("kernel.calls")
            return block
    """, False),
    Case("PUR002", "outside-pure-modules-ok", "runner/hooked.py", """
        from repro import obs
        def f():
            x = obs.count("n")
            return x
    """, False),
    # ------------------------------------------------------------ NUM001
    Case("NUM001", "float64-scalar-promotes", "runner/gain.py", """
        import numpy as np
        def apply_gain(n):
            a = np.zeros((4, 4), dtype=np.float32)
            return a * np.float64(2.0)
    """, True),
    Case("NUM001", "default-float64-array-promotes", "fleet/mix.py", """
        import numpy as np
        def mix():
            a = np.zeros((4, 4), dtype=np.float32)
            offsets = np.array([0.5, 0.25])
            return a[:, :2] + offsets
    """, True),
    Case("NUM001", "rng-draw-promotes", "serve/jitter.py", """
        import numpy as np
        def jitter(rng):
            a = np.zeros((8,), dtype=np.float32)
            return a + rng.normal(0.0, 1.0, size=8)
    """, True),
    Case("NUM001", "weak-python-float-ok", "runner/gain.py", """
        import numpy as np
        def apply_gain():
            a = np.zeros((4, 4), dtype=np.float32)
            return a * 0.5 + 1.0
    """, False),
    Case("NUM001", "explicit-astype-ok", "runner/gain.py", """
        import numpy as np
        def apply_gain():
            a = np.zeros((4, 4), dtype=np.float32)
            b = np.linspace(0.0, 1.0, 4).astype(np.float32)
            return a * b
    """, False),
    Case("NUM001", "unreachable-module-ok", "imaging/dead.py", """
        import numpy as np
        def helper():
            a = np.zeros((4, 4), dtype=np.float32)
            return a * np.float64(2.0)
    """, False),
    # ------------------------------------------------------------ NUM002
    Case("NUM002", "axis-free-sum", "fleet/agg.py", """
        import numpy as np
        def total():
            img = np.zeros((8, 8), dtype=np.float32)
            return img.sum()
    """, True),
    Case("NUM002", "axis-free-np-mean", "runner/metrics.py", """
        import numpy as np
        def level():
            img = np.ones((4, 4, 3), dtype=np.float32)
            return np.mean(img)
    """, True),
    Case("NUM002", "explicit-axis-ok", "fleet/agg.py", """
        import numpy as np
        def per_channel():
            img = np.zeros((8, 8, 3), dtype=np.float32)
            return img.sum(axis=0).sum(axis=0)
    """, False),
    Case("NUM002", "rank1-sum-ok", "runner/metrics.py", """
        import numpy as np
        def norm():
            kernel = np.ones((5,), dtype=np.float32)
            return kernel.sum()
    """, False),
    Case("NUM002", "unreachable-module-ok", "nn/dead.py", """
        import numpy as np
        def helper():
            img = np.zeros((8, 8), dtype=np.float32)
            return img.sum()
    """, False),
    # ----------------------------------------------------------- SHAPE001
    Case("SHAPE001", "batch-axis-reduce", "isp/stagebad.py", """
        import numpy as np
        from repro.lint.contracts import tensor_contract

        @tensor_contract("(N, H, W) float32 -> _")
        def collapse(batch):
            return batch.mean(axis=0)
    """, True),
    Case("SHAPE001", "batch-axis-mask", "kernels/maskbad.py", """
        from repro.lint.contracts import tensor_contract

        @tensor_contract("(N, C) float32 -> _")
        def keep_positive(batch):
            return batch[batch[:, 0] > 0]
    """, True),
    Case("SHAPE001", "batch-axis-reshape", "isp/flatbad.py", """
        from repro.lint.contracts import tensor_contract

        @tensor_contract("(N, H, W) float32 -> _")
        def flatten(batch):
            return batch.reshape(-1)
    """, True),
    Case("SHAPE001", "stale-contract", "imaging/stale.py", """
        from repro.lint.contracts import tensor_contract

        @tensor_contract("(H, W) float32 -> (H, W) float64")
        def identity(x):
            return x
    """, True),
    Case("SHAPE001", "batch-elementwise-ok", "isp/stageok.py", """
        from repro.lint.contracts import tensor_contract

        @tensor_contract("(N, H, W) float32 -> (N, H, W) float32")
        def scale(batch):
            return batch * 2.0
    """, False),
    Case("SHAPE001", "batch-preserving-reshape-ok", "kernels/packok.py", """
        from repro.lint.contracts import tensor_contract

        @tensor_contract("(N, H, W) float32 -> (N, ?) float32")
        def as_rows(batch):
            return batch.reshape(batch.shape[0], -1)
    """, False),
]


def case_params():
    """``pytest.param``-friendly (case, id) pairs."""
    return [(case, f"{case.rule}-{case.id}") for case in CASES]
