"""Whole-program rules across module boundaries.

The corpus in :mod:`tests.lint.corpus` exercises each rule on a single
file; these tests build small multi-module fixture packages under
``tmp_path`` and check the properties that only exist cross-module:
taint and blocking chains that span import hops, and the rendered
traces that make the findings actionable.
"""

import textwrap

from repro.lint import lint_paths


def _write_tree(tmp_path, files):
    targets = []
    for rel, source in sorted(files.items()):
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
        targets.append(target)
    return targets


def _lint(tmp_path, files, rule):
    targets = _write_tree(tmp_path, files)
    return lint_paths(targets, rules=(rule,), root=tmp_path)


def test_seed001_taint_reaches_through_two_import_hops(tmp_path):
    """A literal-seeded RNG two modules below a capture root is flagged
    once, at its birth site, with the root-to-birth chain in the message."""
    report = _lint(tmp_path, {
        "fleet/study.py": """
            from ..devices.phone import photograph
            def run_study(units):
                return [photograph(u) for u in units]
        """,
        "devices/phone.py": """
            from ..sensor.noise import sample_noise
            def photograph(unit):
                return sample_noise(unit)
        """,
        "sensor/noise.py": """
            import numpy as np
            def sample_noise(unit):
                rng = np.random.default_rng(1234)
                return rng.normal(size=4)
        """,
    }, "SEED001")
    assert [f.rule for f in report.findings] == ["SEED001"]
    finding = report.findings[0]
    assert finding.rel == "sensor/noise.py"
    assert "literal" in finding.message
    assert (
        "fleet/study.py:run_study -> devices/phone.py:photograph "
        "-> sensor/noise.py:sample_noise" in finding.message
    )


def test_seed001_derived_chain_through_hops_is_clean(tmp_path):
    report = _lint(tmp_path, {
        "fleet/study.py": """
            from ..devices.phone import photograph
            def run_study(master, units):
                return [photograph(master, u) for u in units]
        """,
        "devices/phone.py": """
            from ..runner.seeds import derive_rng
            def photograph(master, unit):
                rng = derive_rng(master, unit)
                return rng.normal(size=4)
        """,
    }, "SEED001")
    assert not report.findings


def test_asy001_blocking_chain_through_two_import_hops(tmp_path):
    """serve/ async handler -> sync helper in runner/ -> sync IO in lab/:
    one finding at the async frontier, chain spelled out to the
    primitive."""
    report = _lint(tmp_path, {
        "serve/svc.py": """
            from ..runner.helper import fetch
            async def handle(path):
                return fetch(path)
        """,
        "runner/helper.py": """
            from ..lab.io import slurp
            def fetch(path):
                return slurp(path)
        """,
        "lab/io.py": """
            def slurp(path):
                with open(path) as fh:
                    return fh.read()
        """,
    }, "ASY001")
    assert [f.rule for f in report.findings] == ["ASY001"]
    finding = report.findings[0]
    assert finding.rel == "serve/svc.py"
    assert (
        "serve/svc.py:handle -> runner/helper.py:fetch "
        "-> lab/io.py:slurp -> open" in finding.message
    )


def test_asy001_executor_shim_cuts_the_chain(tmp_path):
    report = _lint(tmp_path, {
        "serve/svc.py": """
            import asyncio
            from ..runner.helper import fetch
            async def handle(path):
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(None, fetch, path)
        """,
        "runner/helper.py": """
            def fetch(path):
                with open(path) as fh:
                    return fh.read()
        """,
    }, "ASY001")
    assert not report.findings


def test_pur002_obs_misuse_reached_from_a_pure_module(tmp_path):
    """The value-use sits in a helper module, but it is reachable from a
    codec, so the codec's purity contract still flags it."""
    report = _lint(tmp_path, {
        "codecs/enc.py": """
            from ..imaging.meter import metered_sum
            def encode(block):
                return metered_sum(block)
        """,
        "imaging/meter.py": """
            from repro import obs
            def metered_sum(block):
                total = obs.count("imaging.calls")
                return sum(block) + total
        """,
    }, "PUR002")
    assert [f.rule for f in report.findings] == ["PUR002"]
    finding = report.findings[0]
    assert finding.rel == "imaging/meter.py"
    assert "codecs/enc.py:encode" in finding.message


def test_pur002_write_only_hooks_across_modules_are_clean(tmp_path):
    report = _lint(tmp_path, {
        "codecs/enc.py": """
            from ..imaging.meter import metered_sum
            def encode(block):
                return metered_sum(block)
        """,
        "imaging/meter.py": """
            from repro import obs
            def metered_sum(block):
                obs.count("imaging.calls")
                return sum(block)
        """,
    }, "PUR002")
    assert not report.findings
