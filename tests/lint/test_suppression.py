"""Inline ``# lint: disable=RULE`` suppression semantics."""

from repro.lint import lint_paths


def _run(tmp_path, source, rel="lab/mod.py", rules=None):
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return lint_paths([target], rules=rules, root=tmp_path)


def test_same_line_suppression(tmp_path):
    report = _run(
        tmp_path,
        "import numpy as np\n"
        "x = np.random.rand(4)  # lint: disable=DET001\n",
    )
    assert not report.findings
    assert report.suppressed == 1


def test_suppression_is_rule_specific(tmp_path):
    report = _run(
        tmp_path,
        "import numpy as np\n"
        "x = np.random.rand(4)  # lint: disable=DET003\n",
    )
    assert [f.rule for f in report.findings] == ["DET001"]
    assert report.suppressed == 0


def test_suppress_multiple_rules_on_one_line(tmp_path):
    report = _run(
        tmp_path,
        "import time\n"
        "import numpy as np\n"
        "x = np.random.rand(int(time.time()))"
        "  # lint: disable=DET001, DET002\n",
    )
    assert not report.findings
    assert report.suppressed == 2


def test_disable_all(tmp_path):
    report = _run(
        tmp_path,
        "import numpy as np\n"
        "x = np.random.rand(4)  # lint: disable=all\n",
    )
    assert not report.findings
    assert report.suppressed == 1


def test_suppression_only_covers_its_line(tmp_path):
    report = _run(
        tmp_path,
        "import numpy as np\n"
        "a = np.random.rand(4)  # lint: disable=DET001\n"
        "b = np.random.rand(4)\n",
    )
    assert [f.line for f in report.findings] == [3]
    assert report.suppressed == 1
