"""TCP end-to-end: server + network load generator + CLI parser wiring."""

import asyncio

from repro.__main__ import build_parser
from repro.loadgen.client import run_loadgen
from repro.serve.protocol import decode_message, encode_message
from repro.serve.server import ServeServer
from repro.serve.service import IngestService

from .conftest import make_config


def serve_and_drive(count=20, rate=500.0, seed=5, **config_overrides):
    async def scenario():
        server = ServeServer(IngestService(make_config(**config_overrides)), port=0)
        await server.start()
        run_task = asyncio.create_task(server.run())
        report = await run_loadgen(
            "127.0.0.1", server.port, count=count, rate=rate, seed=seed, drain=True
        )
        accounting = await asyncio.wait_for(run_task, 60)
        return report, accounting

    return asyncio.run(scenario())


class TestEndToEnd:
    def test_loadgen_round_trip_and_clean_drain(self):
        report, accounting = serve_and_drive(count=20)
        assert report["answered"] == report["planned"] == 20
        assert report["by_status"]["ok"] == 20
        assert report["captures_per_sec"] > 0
        assert report["latency"]["count"] == 20
        assert accounting["balanced"]
        assert accounting["accepted"] == 20
        assert report["server_accounting"] == accounting

    def test_wire_results_match_inproc_reference(self):
        # The digests shipped over TCP are the serial-runner digests:
        # bit-identity is checkable across the network boundary.
        report, _ = serve_and_drive(count=12, seed=9)
        service = IngestService(make_config())
        from repro.loadgen.generator import build_schedule
        from repro.serve.service import CaptureRequest

        schedule = build_schedule(
            count=12, rate=500.0, devices=4, scenes=2, seed=9, repeats=1
        )
        serial = service.serial_reference(
            [CaptureRequest(p.request_id, p.device, p.scene, p.repeat) for p in schedule]
        )
        expected = {r.request_id: r for r in serial}
        assert len(report["results"]) == 12
        for message in report["results"]:
            reference = expected[message["id"]]
            assert message["pixels_sha256"] == reference.pixels_sha256
            assert message["top1"] == reference.top1
            assert message["ranking"] == list(reference.ranking)
            assert message["encoded_size"] == reference.encoded_size

    def test_protocol_errors_answered_not_fatal(self):
        async def scenario():
            server = ServeServer(IngestService(make_config()), port=0)
            await server.start()
            run_task = asyncio.create_task(server.run())
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(b"this is not json\n")
            await writer.drain()
            error = decode_message(await reader.readline())
            writer.write(encode_message({"op": "hello"}))
            await writer.drain()
            hello = decode_message(await reader.readline())
            writer.write(encode_message({"op": "drain", "stop": True}))
            await writer.drain()
            drained = decode_message(await reader.readline())
            writer.close()
            await asyncio.wait_for(run_task, 30)
            return error, hello, drained

        error, hello, drained = asyncio.run(scenario())
        assert error["op"] == "error"
        assert hello["op"] == "hello"
        assert hello["devices"] == 4
        assert hello["scenes"] == 2
        assert drained["op"] == "drained"
        assert drained["accounting"]["balanced"]


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 7070
        assert args.fleet_size == 16
        assert args.scenes == 4
        assert args.queue_capacity == 256
        assert args.batch_max == 64
        assert args.model == "quick"
        assert args.workers == 0
        assert not args.warm

    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--port", "0",
                "--fleet-size", "64",
                "--scenes", "8",
                "--queue-capacity", "512",
                "--batch-max", "32",
                "--batch-window", "0.1",
                "--request-timeout", "10",
                "--window", "2",
                "--model", "untrained",
                "--warm",
                "--shard-index", "1",
                "--shard-count", "4",
                "--cache-dir", "/tmp/cache",
                "--workers", "2",
                "--summary-out", "summary.json",
            ]
        )
        assert args.fleet_size == 64
        assert args.queue_capacity == 512
        assert args.shard_count == 4
        assert args.warm

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.port == 7070
        assert args.count == 500
        assert args.rate == 50.0
        assert args.repeats == 1
        assert not args.drain

    def test_loadgen_flags_parse(self):
        args = build_parser().parse_args(
            [
                "loadgen",
                "--port", "7071",
                "--count", "100",
                "--rate", "25",
                "--seed", "3",
                "--repeats", "2",
                "--drain",
                "--connect-timeout", "5",
                "--save", "report.json",
            ]
        )
        assert args.count == 100
        assert args.drain
        assert args.connect_timeout == 5.0

    def test_bench_serve_flag(self):
        args = build_parser().parse_args(["bench", "--serve", "--quick"])
        assert args.serve
        assert args.out is None
