"""Load-generator determinism and report aggregation."""

import pytest

from repro.loadgen.client import summarize_results
from repro.loadgen.generator import build_schedule


class TestScheduleDeterminism:
    def test_same_seed_same_schedule(self):
        a = build_schedule(count=50, rate=20.0, devices=8, scenes=4, seed=3, repeats=2)
        b = build_schedule(count=50, rate=20.0, devices=8, scenes=4, seed=3, repeats=2)
        assert a == b

    def test_different_seed_different_schedule(self):
        a = build_schedule(count=50, rate=20.0, devices=8, scenes=4, seed=3)
        b = build_schedule(count=50, rate=20.0, devices=8, scenes=4, seed=4)
        assert a != b

    def test_rate_retimes_but_keeps_the_request_mix(self):
        # Separate RNG streams for arrivals and coordinates: changing
        # the rate must re-time the *same* sequence of requests.
        slow = build_schedule(count=40, rate=5.0, devices=8, scenes=4, seed=7)
        fast = build_schedule(count=40, rate=500.0, devices=8, scenes=4, seed=7)
        assert [(p.device, p.scene, p.repeat) for p in slow] == [
            (p.device, p.scene, p.repeat) for p in fast
        ]
        assert [p.at_s for p in slow] != [p.at_s for p in fast]

    def test_arrivals_monotonic_and_mean_near_rate(self):
        schedule = build_schedule(count=400, rate=50.0, devices=4, scenes=2, seed=0)
        times = [p.at_s for p in schedule]
        assert times == sorted(times)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1 / 50.0, rel=0.25)

    def test_coordinates_stay_in_range(self):
        schedule = build_schedule(
            count=200, rate=100.0, devices=3, scenes=2, seed=1, repeats=2
        )
        assert {p.request_id for p in schedule} == set(range(200))
        assert all(0 <= p.device < 3 for p in schedule)
        assert all(0 <= p.scene < 2 for p in schedule)
        assert all(0 <= p.repeat < 2 for p in schedule)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"count": -1},
            {"rate": 0.0},
            {"devices": 0},
            {"scenes": 0},
            {"repeats": 0},
        ],
    )
    def test_bad_arguments_rejected(self, kwargs):
        base = dict(count=10, rate=10.0, devices=2, scenes=2, repeats=1)
        with pytest.raises(ValueError):
            build_schedule(**{**base, **kwargs})


class TestSummarize:
    def test_counts_latency_and_throughput(self):
        results = [
            {"op": "result", "status": "ok", "latency_ms": 10.0},
            {"op": "result", "status": "ok", "latency_ms": 30.0},
            {"op": "result", "status": "shed", "latency_ms": 0.0},
        ]
        report = summarize_results(results, elapsed_s=2.0, planned=4)
        assert report["planned"] == 4
        assert report["answered"] == 3
        assert report["by_status"] == {"ok": 2, "shed": 1}
        assert report["captures_per_sec"] == pytest.approx(1.0)
        assert report["latency"]["count"] == 2
        assert report["latency"]["p50_ms"] == pytest.approx(10.0)
