"""The serving determinism invariant: drained service == serial runner.

A response must be a pure function of its request coordinates — the
queue, the batcher, coalescing, batch sizing, and the worker pool are
all throughput machinery that cannot change a single bit of any answer.
"""

import asyncio

from repro.loadgen.client import drive_inproc
from repro.loadgen.generator import build_schedule
from repro.serve.service import CaptureRequest, IngestService

from .conftest import make_config


def drive(config, schedule):
    async def scenario():
        service = IngestService(config)
        await service.start()
        report = await drive_inproc(service, schedule, paced=False)
        await service.drain()
        return service, report

    return asyncio.run(scenario())


def fields(report):
    return {
        rid: response.deterministic_fields()
        for rid, response in report["responses"].items()
    }


SCHEDULE = build_schedule(count=24, rate=1000.0, devices=4, scenes=2, seed=11, repeats=2)


class TestBitIdentity:
    def test_drained_service_matches_serial_reference(self):
        config = make_config(batch_max=16, queue_capacity=64)
        service, report = drive(config, SCHEDULE)
        assert all(r.status == "ok" for r in report["responses"].values())
        requests = [
            CaptureRequest(p.request_id, p.device, p.scene, p.repeat)
            for p in SCHEDULE
        ]
        serial = {
            r.request_id: r.deterministic_fields()
            for r in service.serial_reference(requests)
        }
        assert fields(report) == serial

    def test_batch_composition_cannot_change_responses(self):
        # batch_max=1 (no coalescing, one unit per batch) versus
        # batch_max=32 (whole run in one coalesced batch): identical.
        _, singles = drive(make_config(batch_max=1), SCHEDULE)
        _, batched = drive(make_config(batch_max=32), SCHEDULE)
        assert fields(singles) == fields(batched)

    def test_worker_pool_cannot_change_responses(self):
        _, serial = drive(make_config(workers=0), SCHEDULE)
        _, pooled = drive(make_config(workers=2), SCHEDULE)
        assert fields(serial) == fields(pooled)

    def test_request_order_cannot_change_responses(self):
        reordered = list(reversed(SCHEDULE))
        _, forward = drive(make_config(), SCHEDULE)
        _, backward = drive(make_config(), reordered)
        assert fields(forward) == fields(backward)
