"""Service-path invariants: shedding, drain, timeouts, windows, warming.

These are the acceptance criteria of the serving PR in executable form:
bounded queues shed under overload without deadlock, graceful drain
answers or accounts for every accepted request, and the streaming
(windowed) metrics agree with the direct counts.
"""

import asyncio

import pytest

from repro.runner.cache import CaptureCache
from repro.serve.service import (
    CaptureRequest,
    IngestService,
    ServeConfig,
    latency_summary,
    shard_of_key,
)
from repro.runner.units import unit_cache_key

from .conftest import make_config


def run(coro):
    return asyncio.run(coro)


class TestAdmission:
    def test_overload_sheds_exactly_beyond_capacity(self):
        async def scenario():
            service = IngestService(make_config(queue_capacity=5))
            await service.start()
            # Synchronous submits with no await in between: the batcher
            # never gets scheduled, so the queue fills deterministically.
            futures = [
                service.submit(CaptureRequest(i, device=i % 4, scene=0))
                for i in range(12)
            ]
            responses = await asyncio.gather(*futures)
            await service.drain()
            return service, responses

        service, responses = run(scenario())
        statuses = [r.status for r in responses]
        assert statuses.count("shed") == 12 - 5
        assert statuses.count("ok") == 5
        # Shed responses resolve immediately with a reason.
        shed = next(r for r in responses if r.status == "shed")
        assert "queue full" in shed.detail
        accounting = service.accounting()
        assert accounting["shed"] == 7
        assert accounting["accepted"] == 5
        assert accounting["balanced"]

    def test_invalid_coordinates_rejected_without_acceptance(self):
        async def scenario():
            service = IngestService(make_config())
            await service.start()
            bad = [
                CaptureRequest(0, device=99, scene=0),
                CaptureRequest(1, device=0, scene=99),
                CaptureRequest(2, device=0, scene=0, repeat=-1),
            ]
            responses = await asyncio.gather(*[service.submit(r) for r in bad])
            await service.drain()
            return service, responses

        service, responses = run(scenario())
        assert [r.status for r in responses] == ["invalid"] * 3
        accounting = service.accounting()
        assert accounting["invalid"] == 3
        assert accounting["accepted"] == 0
        assert accounting["balanced"]

    def test_submit_after_drain_rejected_as_draining(self):
        async def scenario():
            service = IngestService(make_config())
            await service.start()
            await service.drain()
            return service, await service.submit(CaptureRequest(0, 0, 0))

        service, response = run(scenario())
        assert response.status == "draining"
        assert service.accounting()["rejected_draining"] == 1


class TestDrain:
    def test_drain_answers_every_accepted_request(self):
        async def scenario():
            service = IngestService(make_config(batch_window_s=0.5, batch_max=100))
            await service.start()
            futures = [
                service.submit(CaptureRequest(i, device=i % 4, scene=i % 2))
                for i in range(10)
            ]
            # Drain immediately — the batch window hasn't elapsed, so
            # everything is still queued; drain must flush it anyway.
            accounting = await service.drain()
            responses = await asyncio.gather(*futures)
            return accounting, responses

        accounting, responses = run(scenario())
        assert all(r.status == "ok" for r in responses)
        assert accounting["accepted"] == 10
        assert accounting["completed"] == 10
        assert accounting["pending"] == 0
        assert accounting["balanced"]

    def test_drain_is_idempotent(self):
        async def scenario():
            service = IngestService(make_config())
            await service.start()
            await asyncio.gather(*[
                service.submit(CaptureRequest(i, 0, 0)) for i in range(3)
            ])
            first = await service.drain()
            second = await service.drain()
            return first, second

        first, second = run(scenario())
        assert first == second

    def test_expired_requests_answer_timeout_and_stay_accounted(self):
        async def scenario():
            service = IngestService(make_config(request_timeout_s=0.0))
            await service.start()
            futures = [
                service.submit(CaptureRequest(i, 0, 0)) for i in range(4)
            ]
            responses = await asyncio.gather(*futures)
            accounting = await service.drain()
            return accounting, responses

        accounting, responses = run(scenario())
        assert [r.status for r in responses] == ["timeout"] * 4
        assert accounting["timed_out"] == 4
        assert accounting["completed"] == 0
        assert accounting["balanced"]


class TestCoalescing:
    def test_duplicate_coordinates_coalesce_to_one_execution(self):
        async def scenario():
            service = IngestService(make_config(batch_max=16, batch_window_s=0.1))
            await service.start()
            futures = [
                service.submit(CaptureRequest(i, device=1, scene=1)) for i in range(6)
            ]
            responses = await asyncio.gather(*futures)
            await service.drain()
            return service, responses

        service, responses = run(scenario())
        assert all(r.status == "ok" for r in responses)
        # All six shared one (device, scene, repeat): identical payloads.
        assert len({r.pixels_sha256 for r in responses}) == 1
        counters = service.stats()["counters"]
        assert counters["serve.coalesced"] == 5.0
        assert counters["serve.completed"] == 6.0


class TestWindowedMetrics:
    def test_window_totals_match_direct_counts(self):
        async def scenario():
            service = IngestService(make_config(window_s=0.05))
            await service.start()
            for burst in range(3):
                futures = [
                    service.submit(CaptureRequest(burst * 4 + i, i % 4, 0))
                    for i in range(4)
                ]
                await asyncio.gather(*futures)
                await asyncio.sleep(0.08)  # force at least one window roll
            accounting = await service.drain()
            return service, accounting

        service, accounting = run(scenario())
        assert service._windows_rolled >= 3
        # The cumulative registry was built purely from window-snapshot
        # merges, yet its totals equal the per-event ground truth.
        counters = service.stats()["counters"]
        assert counters["serve.accepted"] == 12.0
        assert counters["serve.completed"] == 12.0
        assert service.stats()["histograms"]["serve.latency_ms"]["count"] == 12
        assert accounting["balanced"]


class TestCacheWarming:
    def test_shards_partition_the_unit_keyspace(self, tmp_path):
        cache = CaptureCache(tmp_path / "cache")
        config = make_config(fleet_size=4, scenes=2)
        service = IngestService(config, cache=cache)
        reports = [
            service.warm(shard_index=i, shard_count=3, repeats=2) for i in range(3)
        ]
        # Every candidate unit lands in exactly one shard.
        assert all(r["candidates"] == 4 * 2 * 2 for r in reports)
        assert sum(r["shard_units"] for r in reports) == 4 * 2 * 2
        assert sum(r["warmed"] + r["already_cached"] for r in reports) == 4 * 2 * 2
        # After warming all shards, every unit the service can be asked
        # for is a cache hit.
        for device in range(4):
            for scene in range(2):
                for repeat in range(2):
                    unit = service.unit_for(CaptureRequest(-1, device, scene, repeat))
                    assert unit_cache_key(unit) in cache

    def test_warm_is_idempotent(self, tmp_path):
        cache = CaptureCache(tmp_path / "cache")
        service = IngestService(make_config(), cache=cache)
        first = service.warm()
        second = service.warm()
        assert first["warmed"] > 0
        assert second["warmed"] == 0
        assert second["already_cached"] == first["shard_units"]

    def test_warm_requires_cache(self):
        service = IngestService(make_config())
        with pytest.raises(ValueError):
            service.warm()

    def test_shard_of_key_matches_disk_layout(self):
        # Same prefix → same shard dir → same warm shard.
        assert shard_of_key("ff" + "0" * 62, 4) == 0xFF % 4
        assert shard_of_key("00" + "0" * 62, 4) == 0
        with pytest.raises(ValueError):
            shard_of_key("ab", 0)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"fleet_size": 0},
            {"scenes": 0},
            {"queue_capacity": 0},
            {"batch_max": 0},
            {"batch_window_s": -1.0},
            {"request_timeout_s": -1.0},
            {"window_s": -1.0},
            {"model": "resnet"},
        ],
    )
    def test_bad_config_rejected(self, overrides):
        with pytest.raises(ValueError):
            ServeConfig(**{**dict(model="untrained"), **overrides})


class TestLatencySummary:
    def test_empty(self):
        assert latency_summary([]) == {"count": 0}

    def test_percentiles_nearest_rank(self):
        summary = latency_summary([i / 1000 for i in range(1, 101)])
        assert summary["count"] == 100
        assert summary["p50_ms"] == pytest.approx(50.0)
        assert summary["p95_ms"] == pytest.approx(95.0)
        assert summary["p99_ms"] == pytest.approx(99.0)
        assert summary["max_ms"] == pytest.approx(100.0)
