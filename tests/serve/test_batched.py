"""Opt-in batched serving: fused coalesced batches stay bit-identical.

``ServeConfig(batched=True)`` routes each coalesced executor batch
through the fused same-(phone, scene) group path. That is throughput
machinery only: a drained batched service must agree with the serial
per-unit runner — and with the default (unbatched) service — on every
deterministic response field, under coalescing, repeats, worker pools,
and arrival reordering.
"""

import asyncio

from repro.loadgen.client import drive_inproc
from repro.loadgen.generator import build_schedule
from repro.serve.service import CaptureRequest, IngestService

from .conftest import make_config


def drive(config, schedule):
    async def scenario():
        service = IngestService(config)
        await service.start()
        report = await drive_inproc(service, schedule, paced=False)
        await service.drain()
        return service, report

    return asyncio.run(scenario())


def fields(report):
    return {
        rid: response.deterministic_fields()
        for rid, response in report["responses"].items()
    }


# repeats=3 gives every (device, scene) triple captures to fuse.
SCHEDULE = build_schedule(count=24, rate=1000.0, devices=4, scenes=2, seed=13, repeats=3)


class TestBatchedServing:
    def test_default_is_unbatched(self):
        assert make_config().batched is False
        assert IngestService(make_config()).executor.batched is False
        assert IngestService(make_config(batched=True)).executor.batched is True

    def test_drained_batched_service_matches_serial_reference(self):
        config = make_config(batched=True, batch_max=16, queue_capacity=64)
        service, report = drive(config, SCHEDULE)
        assert all(r.status == "ok" for r in report["responses"].values())
        requests = [
            CaptureRequest(p.request_id, p.device, p.scene, p.repeat)
            for p in SCHEDULE
        ]
        serial = {
            r.request_id: r.deterministic_fields()
            for r in service.serial_reference(requests)
        }
        assert fields(report) == serial

    def test_batched_matches_unbatched_service(self):
        _, unbatched = drive(make_config(batched=False), SCHEDULE)
        _, batched = drive(make_config(batched=True), SCHEDULE)
        assert fields(batched) == fields(unbatched)

    def test_batched_with_worker_pool(self):
        _, serial = drive(make_config(batched=True, workers=0), SCHEDULE)
        _, pooled = drive(make_config(batched=True, workers=2), SCHEDULE)
        assert fields(serial) == fields(pooled)

    def test_batched_request_order(self):
        reordered = list(reversed(SCHEDULE))
        _, forward = drive(make_config(batched=True), SCHEDULE)
        _, backward = drive(make_config(batched=True), reordered)
        assert fields(forward) == fields(backward)

    def test_batched_recorded_in_summary(self):
        service, _ = drive(make_config(batched=True), SCHEDULE[:4])
        assert service.run_summary()["config"]["batched"] is True
