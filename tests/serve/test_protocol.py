"""Wire-protocol round-trips and malformed-line handling."""

import pytest

from repro.serve.protocol import (
    ProtocolError,
    capture_message,
    decode_message,
    encode_message,
    result_message,
)
from repro.serve.service import CaptureResponse


class TestRoundTrip:
    def test_capture_round_trip(self):
        message = capture_message(7, device=3, scene=1, repeat=2)
        assert decode_message(encode_message(message)) == message

    def test_encode_is_one_line(self):
        line = encode_message(capture_message(1, 0, 0))
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_encode_is_byte_stable(self):
        # Sorted keys: construction order can't change the wire bytes.
        a = {"op": "capture", "id": 1, "device": 2, "scene": 0, "repeat": 0}
        b = {"repeat": 0, "scene": 0, "device": 2, "id": 1, "op": "capture"}
        assert encode_message(a) == encode_message(b)

    def test_ok_result_carries_prediction_and_digest(self):
        response = CaptureResponse(
            request_id=9,
            status="ok",
            top1=3,
            confidence=0.25,
            ranking=(3, 1, 0, 2),
            pixels_sha256="ab" * 32,
            encoded_size=1234,
            latency_s=0.5,
        )
        message = decode_message(encode_message(result_message(response)))
        assert message["op"] == "result"
        assert message["id"] == 9
        assert message["status"] == "ok"
        assert message["top1"] == 3
        assert message["ranking"] == [3, 1, 0, 2]
        assert message["pixels_sha256"] == "ab" * 32
        assert message["encoded_size"] == 1234
        assert message["latency_ms"] == 500.0

    def test_refusal_result_carries_detail_only(self):
        response = CaptureResponse(request_id=4, status="shed", detail="queue full")
        message = result_message(response)
        assert message["status"] == "shed"
        assert message["detail"] == "queue full"
        assert "pixels_sha256" not in message


class TestMalformed:
    @pytest.mark.parametrize(
        "line",
        [b"not json\n", b"[1, 2]\n", b'{"no_op": true}\n', b'{"op": 5}\n', b"\xff\xfe\n"],
    )
    def test_bad_lines_raise(self, line):
        with pytest.raises(ProtocolError):
            decode_message(line)
