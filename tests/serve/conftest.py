"""Shared helpers for the serving tests.

Everything runs on the ``untrained`` seed-1 model (instant start; the
bit-identity invariants don't care about weights) and tiny fleets, so
the whole suite stays in tier-1 time budgets. Async tests drive the
event loop explicitly with ``asyncio.run`` — no async test plugin.
"""

import pytest

from repro.serve.service import IngestService, ServeConfig


def make_config(**overrides) -> ServeConfig:
    defaults = dict(
        fleet_size=4,
        scenes=2,
        seed=0,
        queue_capacity=64,
        batch_max=8,
        batch_window_s=0.01,
        request_timeout_s=30.0,
        workers=0,
        window_s=0.0,
        model="untrained",
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


@pytest.fixture(scope="session")
def shared_service():
    """One read-only service for tests that never start it."""
    return IngestService(make_config())
