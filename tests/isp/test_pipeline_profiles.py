"""Tests for pipeline composition and the vendor profiles."""

import numpy as np
import pytest

from repro.imaging import ImageBuffer, RawImage
from repro.isp import (
    BlackLevelCorrection,
    Demosaic,
    GammaEncode,
    ISPPipeline,
    Resize,
    WhiteBalance,
    available_isps,
    build_isp,
)
from repro.sensor import BayerSensor, SensorConfig


def _raw(seed=0):
    sensor = BayerSensor(SensorConfig(resolution=(32, 32)))
    rng = np.random.default_rng(seed)
    img = ImageBuffer(rng.random((48, 48, 3)).astype(np.float32))
    return sensor.capture(img, rng)


class TestPipelineValidation:
    def test_requires_exactly_one_demosaic(self):
        with pytest.raises(ValueError):
            ISPPipeline([BlackLevelCorrection(), GammaEncode()])
        with pytest.raises(ValueError):
            ISPPipeline([Demosaic(), Demosaic()])

    def test_black_level_must_precede_demosaic(self):
        with pytest.raises(ValueError):
            ISPPipeline([Demosaic(), BlackLevelCorrection()])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ISPPipeline([])


class TestPipelineExecution:
    def test_minimal_pipeline(self):
        pipeline = ISPPipeline([BlackLevelCorrection(), Demosaic(), Resize(24, 24)])
        out = pipeline.process(_raw())
        assert isinstance(out, ImageBuffer)
        assert out.shape == (24, 24, 3)
        assert 0.0 <= out.pixels.min() and out.pixels.max() <= 1.0

    def test_deterministic(self):
        pipeline = build_isp("imagemagick", 32, 32)
        raw = _raw()
        a = pipeline.process(raw)
        b = pipeline.process(raw)
        assert np.array_equal(a.pixels, b.pixels)

    def test_does_not_mutate_raw(self):
        raw = _raw()
        original = raw.mosaic.copy()
        build_isp("adobe", 32, 32).process(raw)
        assert np.array_equal(raw.mosaic, original)

    def test_taps(self):
        pipeline = ISPPipeline(
            [BlackLevelCorrection(), Demosaic(), WhiteBalance(), Resize(16, 16)]
        )
        out, taps = pipeline.process_with_taps(_raw())
        # RGB-domain stages only: demosaic, wb, resize.
        assert len(taps) == 3
        final_key = sorted(taps)[-1]
        assert np.array_equal(taps[final_key].pixels, out.pixels)

    def test_stage_names(self):
        pipeline = build_isp("samsung_s10")
        names = pipeline.stage_names()
        assert names[0] == "BlackLevelCorrection"
        assert "Demosaic" in names


class TestProfiles:
    def test_all_profiles_listed(self):
        names = available_isps()
        assert {"samsung_s10", "lg_k10", "htc_desire10", "moto_g5",
                "iphone_xr", "imagemagick", "adobe"} <= set(names)

    def test_unknown_profile(self):
        with pytest.raises(KeyError, match="imagemagick"):
            build_isp("lightroom")

    @pytest.mark.parametrize("name", ["samsung_s10", "lg_k10", "htc_desire10",
                                      "moto_g5", "iphone_xr", "imagemagick", "adobe"])
    def test_every_profile_processes(self, name):
        out = build_isp(name, 24, 24).process(_raw())
        assert out.shape == (24, 24, 3)
        assert np.isfinite(out.pixels).all()

    def test_profiles_produce_distinct_images(self):
        """Same raw, different vendor ISPs -> different pictures (§6)."""
        raw = _raw(seed=5)
        outputs = {
            name: build_isp(name, 32, 32).process(raw).to_uint8()
            for name in available_isps()
        }
        names = sorted(outputs)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                assert not np.array_equal(outputs[a], outputs[b]), (a, b)

    def test_builders_are_pure(self):
        a = build_isp("adobe")
        b = build_isp("adobe")
        assert a is not b
        assert a.stage_names() == b.stage_names()

    def test_software_isps_diverge_strongly(self):
        """imagemagick vs adobe is the paper's Table 4 axis."""
        from repro.imaging.metrics import psnr

        raw = _raw(seed=7)
        im = build_isp("imagemagick", 32, 32).process(raw)
        adobe = build_isp("adobe", 32, 32).process(raw)
        assert psnr(im.pixels, adobe.pixels) < 33.0
