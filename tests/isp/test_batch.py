"""Batched ISP development is bit-identical to serial development.

``ISPPipeline.process_batch`` stacks the raw mosaics on a leading batch
axis and runs every stage's ``process_batch``; each must reproduce the
per-item ``process`` byte for byte. Custom stages without an override
inherit the split -> process -> join fallback, which is correct by
construction.
"""

import numpy as np
import pytest

from repro.devices import capture_fleet
from repro.devices.phone import Phone
from repro.imaging.image import ImageBuffer, RawImage
from repro.isp.pipeline import ISPPipeline
from repro.isp.stages import BatchISPState, ISPStage


@pytest.fixture(scope="module")
def raws_by_profile():
    """Four repeat captures per fleet profile (distinct noise draws)."""
    from scipy import ndimage

    rng = np.random.default_rng(17)
    field = ndimage.gaussian_filter(rng.random((48, 48, 3)), (3, 3, 0))
    field = (field - field.min()) / (field.max() - field.min())
    radiance = ImageBuffer(field.astype(np.float32))
    out = {}
    for profile in capture_fleet():
        phone = Phone(profile)
        out[profile.name] = (
            phone,
            [phone.capture_raw(radiance, np.random.default_rng((4, r))) for r in range(4)],
        )
    return out


@pytest.mark.parametrize("name", [p.name for p in capture_fleet()])
def test_process_batch_matches_serial(name, raws_by_profile):
    phone, raws = raws_by_profile[name]
    serial = [phone.develop(raw) for raw in raws]
    batch = phone.develop_batch(raws)
    assert len(batch) == len(serial)
    for one, many in zip(serial, batch):
        assert one.pixels.dtype == many.pixels.dtype
        assert one.pixels.tobytes() == many.pixels.tobytes()


def test_process_batch_empty(raws_by_profile):
    phone, _ = raws_by_profile[capture_fleet()[0].name]
    assert phone.isp.process_batch([]) == []


def test_batch_state_split_join_roundtrip(raws_by_profile):
    _, raws = raws_by_profile[capture_fleet()[0].name]
    state = BatchISPState(
        raws=raws, mosaic=np.stack([r.mosaic.astype("float32") for r in raws])
    )
    rejoined = BatchISPState.join(state.split())
    assert rejoined.mosaic.tobytes() == state.mosaic.tobytes()
    assert len(rejoined) == len(state)


class _NegateStage(ISPStage):
    """A custom stage with no process_batch override (fallback path)."""

    name = "negate"

    def process(self, state):
        rgb = state.require_rgb()
        state.rgb = np.float32(1.0) - rgb
        return state


def test_custom_stage_uses_fallback(raws_by_profile):
    phone, raws = raws_by_profile[capture_fleet()[0].name]
    stages = list(phone.isp.stages) + [_NegateStage()]
    pipeline = ISPPipeline(stages, name="custom_with_negate")
    serial = [pipeline.process(raw) for raw in raws]
    batch = pipeline.process_batch(raws)
    for one, many in zip(serial, batch):
        assert one.pixels.tobytes() == many.pixels.tobytes()


def test_mixed_raw_geometry_falls_back():
    """Batches mixing black/white levels still develop correctly."""
    profile = capture_fleet()[0]
    phone = Phone(profile)
    rng = np.random.default_rng(2)
    mosaics = [rng.random((16, 16)).astype(np.float32) for _ in range(2)]
    raws = [
        RawImage(
            mosaic=m,
            pattern="RGGB",
            black_level=bl,
            white_level=1023,
            wb_gains=(2.0, 1.0, 1.5),
        )
        for m, bl in zip(mosaics, (64, 32))  # non-uniform black level
    ]
    serial = [phone.isp.process(raw) for raw in raws]
    batch = phone.isp.process_batch(raws)
    for one, many in zip(serial, batch):
        assert one.pixels.tobytes() == many.pixels.tobytes()
