"""Tests for individual ISP stages."""

import numpy as np
import pytest

from repro.imaging import ImageBuffer, RawImage
from repro.isp.stages import (
    BlackLevelCorrection,
    ColorCorrection,
    Demosaic,
    Denoise,
    GammaEncode,
    ISPState,
    Resize,
    Sharpen,
    ToneMap,
    WhiteBalance,
)


def _raw_state(mosaic=None, pattern="RGGB", black=0.1, wb=(1.5, 1.0, 1.8)):
    if mosaic is None:
        mosaic = np.full((16, 16), 0.5, dtype=np.float32)
    raw = RawImage(
        mosaic=mosaic, pattern=pattern, black_level=black, wb_gains=wb
    )
    return ISPState(raw=raw, mosaic=raw.mosaic.copy())


def _rgb_state(rgb):
    state = _raw_state()
    state.mosaic = None
    state.rgb = np.asarray(rgb, dtype=np.float32)
    return state


class TestStateGuards:
    def test_rgb_stage_requires_demosaic_first(self):
        with pytest.raises(RuntimeError):
            WhiteBalance().process(_raw_state())

    def test_mosaic_stage_after_demosaic_fails(self):
        state = _rgb_state(np.ones((4, 4, 3)))
        with pytest.raises(RuntimeError):
            BlackLevelCorrection().process(state)


class TestBlackLevel:
    def test_subtracts_pedestal(self):
        state = _raw_state(np.full((8, 8), 0.55, dtype=np.float32), black=0.1)
        out = BlackLevelCorrection().process(state)
        assert out.mosaic.mean() == pytest.approx(0.5, abs=1e-5)

    def test_clips_below_black(self):
        state = _raw_state(np.full((8, 8), 0.05, dtype=np.float32), black=0.1)
        out = BlackLevelCorrection().process(state)
        assert out.mosaic.min() == 0.0


class TestDemosaic:
    @pytest.mark.parametrize("algorithm", ["bilinear", "malvar"])
    def test_flat_field_reconstructs_flat(self, algorithm):
        state = _raw_state(np.full((16, 16), 0.4, dtype=np.float32))
        out = Demosaic(algorithm).process(state)
        assert out.rgb.shape == (16, 16, 3)
        assert np.allclose(out.rgb, 0.4, atol=0.02)
        assert out.mosaic is None

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            Demosaic("ai_magic").process(_raw_state())

    def test_algorithms_differ_on_edges(self):
        rng = np.random.default_rng(0)
        mosaic = rng.random((16, 16)).astype(np.float32)
        a = Demosaic("bilinear").process(_raw_state(mosaic.copy())).rgb
        b = Demosaic("malvar").process(_raw_state(mosaic.copy())).rgb
        assert not np.allclose(a, b, atol=1e-3)

    @pytest.mark.parametrize("pattern", ["RGGB", "BGGR", "GRBG", "GBRG"])
    def test_recovers_solid_color(self, pattern):
        """A pure-red field mosaiced then demosaiced stays red-dominant."""
        from repro.imaging.image import BAYER_PATTERNS

        cell = BAYER_PATTERNS[pattern]
        channel_map = np.tile(cell, (8, 8))
        color = np.array([0.8, 0.3, 0.1], dtype=np.float32)
        mosaic = color[channel_map]
        out = Demosaic("malvar").process(_raw_state(mosaic, pattern=pattern)).rgb
        center = out[4:-4, 4:-4]
        assert np.allclose(center.mean(axis=(0, 1)), color, atol=0.05)


class TestColorStages:
    def test_white_balance_as_shot(self):
        state = _rgb_state(np.full((4, 4, 3), 0.4, dtype=np.float32))
        out = WhiteBalance("as_shot", strength=1.0).process(state)
        assert out.rgb[0, 0, 0] == pytest.approx(0.4 * 1.5)
        assert out.rgb[0, 0, 1] == pytest.approx(0.4)

    def test_white_balance_strength_blends(self):
        state = _rgb_state(np.full((4, 4, 3), 0.4, dtype=np.float32))
        out = WhiteBalance("as_shot", strength=0.5).process(state)
        assert out.rgb[0, 0, 0] == pytest.approx(0.4 * 1.25)

    def test_white_balance_unknown_source(self):
        with pytest.raises(ValueError):
            WhiteBalance("oracle").process(_rgb_state(np.ones((2, 2, 3))))

    def test_color_correction_identity(self):
        rgb = np.random.default_rng(0).random((4, 4, 3)).astype(np.float32)
        out = ColorCorrection(np.eye(3, dtype=np.float32)).process(_rgb_state(rgb))
        assert np.allclose(out.rgb, rgb)

    def test_tone_map_increases_contrast(self):
        rgb = np.array([[[0.2, 0.2, 0.2], [0.8, 0.8, 0.8]]], dtype=np.float32)
        out = ToneMap(strength=1.0).process(_rgb_state(rgb))
        assert out.rgb[0, 0, 0] < 0.2  # shadows deepen
        assert out.rgb[0, 1, 0] > 0.8  # highlights lift

    def test_tone_map_zero_is_identity(self):
        rgb = np.random.default_rng(1).random((4, 4, 3)).astype(np.float32)
        out = ToneMap(strength=0.0).process(_rgb_state(rgb.copy()))
        assert np.allclose(out.rgb, rgb)

    def test_tone_map_rejects_negative(self):
        with pytest.raises(ValueError):
            ToneMap(strength=-1).process(_rgb_state(np.ones((2, 2, 3))))

    def test_gamma_srgb_matches_reference(self):
        from repro.imaging.color import srgb_encode

        rgb = np.full((2, 2, 3), 0.18, dtype=np.float32)
        out = GammaEncode("srgb").process(_rgb_state(rgb))
        assert np.allclose(out.rgb, srgb_encode(rgb))

    def test_gamma_power(self):
        rgb = np.full((2, 2, 3), 0.25, dtype=np.float32)
        out = GammaEncode("power", gamma=2.0).process(_rgb_state(rgb))
        assert out.rgb[0, 0, 0] == pytest.approx(0.5, abs=1e-5)

    def test_gamma_unknown_mode(self):
        with pytest.raises(ValueError):
            GammaEncode("hdr").process(_rgb_state(np.ones((2, 2, 3))))


class TestSpatialStages:
    def test_denoise_reduces_noise(self):
        rng = np.random.default_rng(0)
        rgb = 0.5 + rng.normal(0, 0.1, (32, 32, 3)).astype(np.float32)
        out = Denoise(luma_sigma=1.0, chroma_sigma=2.0).process(_rgb_state(rgb))
        assert out.rgb.std() < rgb.std()

    def test_sharpen_enhances_edges(self):
        rgb = np.zeros((8, 16, 3), dtype=np.float32)
        rgb[:, 8:] = 0.8
        out = Sharpen(amount=1.0, sigma=1.0).process(_rgb_state(rgb))
        # Local contrast at the edge increases (clipped at 0 below).
        assert out.rgb[:, 8:].max() > 0.8

    def test_sharpen_rejects_negative(self):
        with pytest.raises(ValueError):
            Sharpen(amount=-0.5).process(_rgb_state(np.ones((2, 2, 3))))

    def test_resize(self):
        out = Resize(10, 20).process(_rgb_state(np.ones((4, 4, 3), dtype=np.float32)))
        assert out.rgb.shape == (10, 20, 3)
