"""Tests for the pretrained-model disk cache."""

import numpy as np
import pytest

from repro.nn.pretrained import PretrainConfig, load_pretrained


@pytest.fixture
def tiny_config():
    """A configuration small enough to train inside a test (~5 s)."""
    return PretrainConfig(
        per_class=1, scenes_per_object=1, epochs=1, augment_copies=1, seed=3
    )


class TestCache:
    def test_train_then_cache_hit(self, tiny_config, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = load_pretrained(tiny_config)
        cached_files = list(tmp_path.glob("base_*.npz"))
        assert len(cached_files) == 1

        second = load_pretrained(tiny_config)
        x = np.random.default_rng(0).normal(size=(2, 3, 32, 32)).astype(np.float32)
        assert np.allclose(first.forward(x)[0], second.forward(x)[0], atol=1e-6)

    def test_distinct_configs_distinct_cache_entries(
        self, tiny_config, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        load_pretrained(tiny_config)
        other = PretrainConfig(
            per_class=1, scenes_per_object=1, epochs=2, augment_copies=1, seed=3
        )
        load_pretrained(other)
        assert len(list(tmp_path.glob("base_*.npz"))) == 2

    def test_training_is_deterministic(self, tiny_config, tmp_path, monkeypatch):
        """Two cold trainings of the same config give identical weights."""
        from repro.nn.pretrained import train_base_model

        a = train_base_model(tiny_config)
        b = train_base_model(tiny_config)
        sa, sb = a.state_dict(), b.state_dict()
        assert sa.keys() == sb.keys()
        for key in sa:
            assert np.array_equal(sa[key], sb[key]), key
