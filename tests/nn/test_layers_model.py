"""Tests for trainable layers and the model container."""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm2D,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    GlobalAvgPool,
    ReLU,
    ReLU6,
)
from repro.nn.model import InvertedResidual, Model, micro_mobilenet


class TestBatchNorm:
    def test_training_normalizes_batch(self):
        rng = np.random.default_rng(0)
        x = rng.normal(3.0, 2.0, (16, 4, 8, 8)).astype(np.float32)
        bn = BatchNorm2D(4)
        y = bn.forward(x, training=True)
        assert abs(y.mean()) < 1e-4
        assert y.std() == pytest.approx(1.0, abs=1e-2)

    def test_running_stats_converge(self):
        rng = np.random.default_rng(1)
        bn = BatchNorm2D(2, momentum=0.5)
        for _ in range(20):
            x = rng.normal(5.0, 1.0, (32, 2, 4, 4)).astype(np.float32)
            bn.forward(x, training=True)
        assert bn.running_mean.mean() == pytest.approx(5.0, abs=0.2)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2D(2)
        bn.running_mean[:] = 1.0
        bn.running_var[:] = 4.0
        x = np.full((2, 2, 2, 2), 3.0, dtype=np.float32)
        y = bn.forward(x, training=False)
        assert np.allclose(y, (3.0 - 1.0) / 2.0, atol=1e-3)

    def test_eval_does_not_update_stats(self):
        bn = BatchNorm2D(2)
        before = bn.running_mean.copy()
        bn.forward(np.ones((4, 2, 4, 4), dtype=np.float32), training=False)
        assert np.array_equal(bn.running_mean, before)


class TestActivations:
    def test_relu6_clamps(self):
        r = ReLU6()
        x = np.array([[-1.0, 3.0, 10.0]], dtype=np.float32)
        assert r.forward(x).tolist() == [[0.0, 3.0, 6.0]]

    def test_relu6_gradient_masks(self):
        r = ReLU6()
        x = np.array([[-1.0, 3.0, 10.0]], dtype=np.float32)
        r.forward(x)
        dy = np.ones_like(x)
        assert r.backward(dy).tolist() == [[0.0, 1.0, 0.0]]

    def test_relu(self):
        r = ReLU()
        x = np.array([[-2.0, 2.0]], dtype=np.float32)
        assert r.forward(x).tolist() == [[0.0, 2.0]]
        assert r.backward(np.ones_like(x)).tolist() == [[0.0, 1.0]]


class TestGradAccumulation:
    def test_grads_accumulate_until_zeroed(self):
        dense = Dense(4, 2, rng=np.random.default_rng(0))
        x = np.ones((3, 4), dtype=np.float32)
        dense.zero_grad()
        dense.forward(x)
        dense.backward(np.ones((3, 2), dtype=np.float32))
        first = dense.grads["weight"].copy()
        dense.forward(x)
        dense.backward(np.ones((3, 2), dtype=np.float32))
        assert np.allclose(dense.grads["weight"], 2 * first)
        dense.zero_grad()
        assert np.allclose(dense.grads["weight"], 0.0)


class TestInvertedResidual:
    def test_residual_condition(self):
        rng = np.random.default_rng(0)
        assert InvertedResidual(8, 8, stride=1, rng=rng).use_residual
        assert not InvertedResidual(8, 16, stride=1, rng=rng).use_residual
        assert not InvertedResidual(8, 8, stride=2, rng=rng).use_residual

    def test_stride_halves_resolution(self):
        blk = InvertedResidual(4, 8, stride=2, rng=np.random.default_rng(0))
        y = blk.forward(np.zeros((1, 4, 8, 8), dtype=np.float32))
        assert y.shape == (1, 8, 4, 4)

    def test_zero_grad_recurses(self):
        blk = InvertedResidual(4, 4, rng=np.random.default_rng(0))
        blk.forward(np.random.default_rng(1).normal(size=(2, 4, 8, 8)).astype(np.float32), training=True)
        blk.backward(np.ones((2, 4, 8, 8), dtype=np.float32))
        blk.zero_grad()
        for layer in blk.sublayers:
            for g in layer.grads.values():
                assert np.allclose(g, 0.0)


class TestModel:
    def test_forward_returns_logits_and_embedding(self, tiny_model):
        x = np.random.default_rng(0).normal(size=(2, 3, 32, 32)).astype(np.float32)
        logits, emb = tiny_model.forward(x)
        assert logits.shape == (2, 8)
        assert emb.shape == (2, 64)

    def test_predict_proba_batched(self, tiny_model):
        x = np.random.default_rng(1).normal(size=(5, 3, 32, 32)).astype(np.float32)
        p = tiny_model.predict_proba(x, batch_size=2)
        assert p.shape == (5, 8)
        assert np.allclose(p.sum(axis=1), 1.0, atol=1e-5)

    def test_embed_matches_forward(self, tiny_model):
        x = np.random.default_rng(2).normal(size=(3, 3, 32, 32)).astype(np.float32)
        _, emb = tiny_model.forward(x)
        assert np.allclose(tiny_model.embed(x), emb, atol=1e-6)

    def test_embedding_index_validation(self):
        from repro.nn.layers import Dense

        with pytest.raises(ValueError):
            Model([Dense(4, 4), Dense(4, 2)], embedding_index=1)

    def test_extra_embedding_layer_changes_arch(self):
        base = micro_mobilenet(num_classes=8, seed=0)
        extra = micro_mobilenet(num_classes=8, seed=0, extra_embedding_layer=True)
        assert extra.num_params > base.num_params

    def test_state_dict_roundtrip(self):
        a = micro_mobilenet(num_classes=4, seed=1)
        b = micro_mobilenet(num_classes=4, seed=2)
        x = np.random.default_rng(0).normal(size=(2, 3, 32, 32)).astype(np.float32)
        assert not np.allclose(a.forward(x)[0], b.forward(x)[0])
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.forward(x)[0], b.forward(x)[0])

    def test_load_rejects_missing_keys(self):
        a = micro_mobilenet(num_classes=4, seed=1)
        state = a.state_dict()
        state.pop(sorted(state)[0])
        with pytest.raises(KeyError):
            micro_mobilenet(num_classes=4, seed=1).load_state_dict(state)

    def test_load_rejects_shape_mismatch(self):
        a = micro_mobilenet(num_classes=4, seed=1)
        b = micro_mobilenet(num_classes=5, seed=1)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_copy_is_independent(self, tiny_model):
        clone = tiny_model.copy()
        x = np.random.default_rng(3).normal(size=(1, 3, 32, 32)).astype(np.float32)
        before = tiny_model.forward(x)[0].copy()
        first_layer = clone.trainable_layers()[0]
        first_layer.params["weight"] += 1.0
        assert np.allclose(tiny_model.forward(x)[0], before)

    def test_dembedding_injection_changes_grads(self, tiny_model):
        x = np.random.default_rng(4).normal(size=(2, 3, 32, 32)).astype(np.float32)
        logits, emb = tiny_model.forward(x, training=False)
        tiny_model.zero_grad()
        tiny_model.backward(np.zeros_like(logits), dembedding=np.ones_like(emb))
        # The head's weight gets no gradient (zero dlogits)...
        head = tiny_model.layers[-1]
        assert np.allclose(head.grads["weight"], 0.0)
        # ...but earlier layers do, via the embedding tap.
        first = tiny_model.trainable_layers()[0]
        assert not np.allclose(first.grads["weight"], 0.0)
