"""Tests for low-level NN primitives, including gradient checks."""

import numpy as np
import pytest

from repro.nn.functional import (
    col2im,
    conv2d_backward,
    conv2d_forward,
    depthwise_conv2d_backward,
    depthwise_conv2d_forward,
    global_avg_pool_backward,
    global_avg_pool_forward,
    im2col,
    log_softmax,
    softmax,
)


class TestIm2col:
    def test_shapes(self):
        x = np.zeros((2, 3, 8, 8), dtype=np.float32)
        cols, (oh, ow) = im2col(x, kernel=3, stride=1, pad=1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2 * 64, 27)

    def test_stride(self):
        x = np.zeros((1, 1, 8, 8), dtype=np.float32)
        cols, (oh, ow) = im2col(x, kernel=3, stride=2, pad=1)
        assert (oh, ow) == (4, 4)

    def test_collapsed_output_rejected(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 1, 2, 2)), kernel=5, stride=1, pad=0)

    def test_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        cols, _ = im2col(x, kernel=2, stride=2, pad=0)
        # First window is the top-left 2x2 block.
        assert cols[0].tolist() == [0, 1, 4, 5]

    def test_col2im_adjoint(self):
        """<im2col(x), c> == <x, col2im(c)> — the defining adjoint identity."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float64)
        cols, _ = im2col(x, kernel=3, stride=2, pad=1)
        c = rng.normal(size=cols.shape)
        lhs = float((cols * c).sum())
        rhs = float((x * col2im(c, x.shape, 3, 2, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConv2d:
    def test_forward_matches_naive(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
        w = rng.normal(size=(3, 2, 3, 3)).astype(np.float32)
        b = rng.normal(size=3).astype(np.float32)
        y, _ = conv2d_forward(x, w, b, stride=1, pad=1)

        # Naive reference.
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros_like(y)
        for oc in range(3):
            for i in range(5):
                for j in range(5):
                    patch = xp[0, :, i : i + 3, j : j + 3]
                    ref[0, oc, i, j] = (patch * w[oc]).sum() + b[oc]
        assert np.allclose(y, ref, atol=1e-4)

    def test_gradients_via_inner_product(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float64)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float64)
        b = rng.normal(size=4).astype(np.float64)
        y, cache = conv2d_forward(x, w, b, stride=2, pad=1)
        dy = rng.normal(size=y.shape)
        dx, dw, db = conv2d_backward(dy, cache)
        eps = 1e-6
        # Directional derivative check on x.
        v = rng.normal(size=x.shape)
        y2, _ = conv2d_forward(x + eps * v, w, b, stride=2, pad=1)
        num = ((y2 - y) * dy).sum() / eps
        assert num == pytest.approx((dx * v).sum(), rel=1e-4)
        # And on w.
        vw = rng.normal(size=w.shape)
        y3, _ = conv2d_forward(x, w + eps * vw, b, stride=2, pad=1)
        num_w = ((y3 - y) * dy).sum() / eps
        assert num_w == pytest.approx((dw * vw).sum(), rel=1e-4)
        assert np.allclose(db, dy.sum(axis=(0, 2, 3)))


class TestDepthwiseConv:
    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            depthwise_conv2d_forward(
                np.zeros((1, 3, 4, 4)), np.zeros((4, 3, 3)), None, 1, 1
            )

    def test_channels_independent(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        w = rng.normal(size=(2, 3, 3)).astype(np.float32)
        y, _ = depthwise_conv2d_forward(x, w, None, 1, 1)
        # Zeroing channel 1's input must not change channel 0's output.
        x2 = x.copy()
        x2[:, 1] = 0
        y2, _ = depthwise_conv2d_forward(x2, w, None, 1, 1)
        assert np.allclose(y[:, 0], y2[:, 0])
        assert not np.allclose(y[:, 1], y2[:, 1])

    def test_gradients_via_inner_product(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float64)
        w = rng.normal(size=(3, 3, 3)).astype(np.float64)
        b = rng.normal(size=3).astype(np.float64)
        y, cache = depthwise_conv2d_forward(x, w, b, stride=2, pad=1)
        dy = rng.normal(size=y.shape)
        dx, dw, db = depthwise_conv2d_backward(dy, cache)
        eps = 1e-6
        v = rng.normal(size=x.shape)
        y2, _ = depthwise_conv2d_forward(x + eps * v, w, b, stride=2, pad=1)
        assert ((y2 - y) * dy).sum() / eps == pytest.approx((dx * v).sum(), rel=1e-4)
        vw = rng.normal(size=w.shape)
        y3, _ = depthwise_conv2d_forward(x, w + eps * vw, b, stride=2, pad=1)
        assert ((y3 - y) * dy).sum() / eps == pytest.approx((dw * vw).sum(), rel=1e-4)


class TestPoolAndSoftmax:
    def test_global_avg_pool(self):
        x = np.arange(8, dtype=np.float32).reshape(1, 2, 2, 2)
        y, shape = global_avg_pool_forward(x)
        assert y.shape == (1, 2)
        assert y[0, 0] == pytest.approx(1.5)
        dy = np.ones((1, 2))
        dx = global_avg_pool_backward(dy, shape)
        assert np.allclose(dx, 0.25)

    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(5)
        logits = rng.normal(0, 10, (7, 5))
        p = softmax(logits)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert p.min() >= 0

    def test_softmax_stable_for_large_logits(self):
        p = softmax(np.array([[1e4, 0.0]]))
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self):
        logits = np.random.default_rng(6).normal(size=(3, 4))
        assert np.allclose(np.exp(log_softmax(logits)), softmax(logits), atol=1e-7)
