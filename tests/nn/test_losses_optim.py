"""Tests for losses and optimizers."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.losses import (
    cross_entropy,
    embedding_stability_loss,
    kl_stability_loss,
)
from repro.nn.optim import SGD, Adam


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0]])
        loss, grad = cross_entropy(logits, np.array([0]))
        assert loss < 1e-4
        assert np.abs(grad).max() < 1e-4

    def test_uniform_prediction(self):
        logits = np.zeros((1, 4))
        loss, _ = cross_entropy(logits, np.array([2]))
        assert loss == pytest.approx(np.log(4))

    def test_gradient_numerically(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(3, 5))
        labels = np.array([0, 2, 4])
        loss, grad = cross_entropy(logits, labels)
        eps = 1e-6
        for i in range(3):
            for j in range(5):
                bumped = logits.copy()
                bumped[i, j] += eps
                l2, _ = cross_entropy(bumped, labels)
                assert (l2 - loss) / eps == pytest.approx(grad[i, j], abs=1e-4)

    def test_label_shape_mismatch(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((2, 3)), np.array([0]))


class TestKLStability:
    def test_zero_when_identical(self):
        logits = np.random.default_rng(1).normal(size=(4, 6))
        loss, dclean, dnoisy = kl_stability_loss(logits, logits.copy())
        assert loss == pytest.approx(0.0, abs=1e-7)
        assert np.allclose(dnoisy, 0.0, atol=1e-7)
        assert np.allclose(dclean, 0.0, atol=1e-6)

    def test_positive_when_different(self):
        rng = np.random.default_rng(2)
        loss, _, _ = kl_stability_loss(rng.normal(size=(3, 4)), rng.normal(size=(3, 4)))
        assert loss > 0

    def test_gradients_numerically(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(2, 4))
        b = rng.normal(size=(2, 4))
        loss, dclean, dnoisy = kl_stability_loss(a, b)
        eps = 1e-6
        for i in range(2):
            for j in range(4):
                a2 = a.copy(); a2[i, j] += eps
                l2, _, _ = kl_stability_loss(a2, b)
                assert (l2 - loss) / eps == pytest.approx(dclean[i, j], abs=1e-4)
                b2 = b.copy(); b2[i, j] += eps
                l3, _, _ = kl_stability_loss(a, b2)
                assert (l3 - loss) / eps == pytest.approx(dnoisy[i, j], abs=1e-4)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            kl_stability_loss(np.zeros((2, 3)), np.zeros((2, 4)))


class TestEmbeddingStability:
    def test_zero_when_identical(self):
        emb = np.random.default_rng(4).normal(size=(3, 8))
        loss, dc, dn = embedding_stability_loss(emb, emb.copy())
        assert loss == pytest.approx(0.0)

    def test_value_is_mean_distance(self):
        a = np.zeros((2, 3))
        b = np.array([[3.0, 4.0, 0.0], [0.0, 0.0, 1.0]])
        loss, _, _ = embedding_stability_loss(a, b)
        assert loss == pytest.approx((5.0 + 1.0) / 2)

    def test_gradients_opposite(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(4, 6))
        b = rng.normal(size=(4, 6))
        _, dc, dn = embedding_stability_loss(a, b)
        assert np.allclose(dc, -dn)

    def test_gradient_numerically(self):
        rng = np.random.default_rng(6)
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(2, 3))
        loss, dc, _ = embedding_stability_loss(a, b)
        eps = 1e-6
        a2 = a.copy()
        a2[0, 1] += eps
        l2, _, _ = embedding_stability_loss(a2, b)
        assert (l2 - loss) / eps == pytest.approx(dc[0, 1], abs=1e-4)


def _quadratic_problem(opt_factory, steps=200):
    """Minimize ||W x - t||^2 over a Dense layer with the given optimizer."""
    rng = np.random.default_rng(0)
    dense = Dense(4, 2, rng=rng)
    x = rng.normal(size=(16, 4)).astype(np.float32)
    # A realizable target (x @ W* + b*), so the optimum loss is ~0.
    w_true = rng.normal(size=(2, 4)).astype(np.float32)
    b_true = rng.normal(size=2).astype(np.float32)
    target = x @ w_true.T + b_true
    opt = opt_factory([dense])
    losses = []
    for _ in range(steps):
        dense.zero_grad()
        y = dense.forward(x)
        diff = y - target
        losses.append(float((diff**2).mean()))
        dense.backward(2 * diff / diff.size)
        opt.step()
    return losses


class TestOptimizers:
    def test_sgd_converges(self):
        losses = _quadratic_problem(lambda l: SGD(l, lr=0.5, momentum=0.9))
        assert losses[-1] < losses[0] * 0.01

    def test_adam_converges(self):
        losses = _quadratic_problem(lambda l: Adam(l, lr=0.05))
        assert losses[-1] < losses[0] * 0.01

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)
        with pytest.raises(ValueError):
            Adam([], lr=-1.0)

    def test_weight_decay_shrinks_weights(self):
        rng = np.random.default_rng(1)
        dense = Dense(4, 4, rng=rng)
        dense.zero_grad()  # zero gradients: only decay acts
        before = np.abs(dense.params["weight"]).sum()
        opt = SGD([dense], lr=0.1, momentum=0.0, weight_decay=0.1)
        for _ in range(10):
            opt.step()
        assert np.abs(dense.params["weight"]).sum() < before

    def test_zero_grad_helper(self):
        dense = Dense(2, 2, rng=np.random.default_rng(2))
        dense.forward(np.ones((1, 2), dtype=np.float32))
        dense.backward(np.ones((1, 2), dtype=np.float32))
        opt = Adam([dense])
        opt.zero_grad()
        assert np.allclose(dense.grads["weight"], 0.0)
