"""Tests for the training loop and input preprocessing."""

import numpy as np
import pytest

from repro.imaging import ImageBuffer
from repro.nn.model import micro_mobilenet
from repro.nn.optim import Adam
from repro.nn.preprocess import MODEL_INPUT_SIZE, to_model_input
from repro.nn.train import TrainConfig, evaluate_accuracy, fit, iterate_minibatches


class TestPreprocess:
    def test_single_image_batched(self):
        x = to_model_input(ImageBuffer.full(96, 96, 0.5))
        assert x.shape == (1, 3, MODEL_INPUT_SIZE, MODEL_INPUT_SIZE)

    def test_range_is_minus_one_to_one(self):
        black = to_model_input(ImageBuffer.full(64, 64, 0.0))
        white = to_model_input(ImageBuffer.full(64, 64, 1.0))
        assert np.allclose(black, -1.0)
        assert np.allclose(white, 1.0)

    def test_quantizes_through_uint8(self):
        # Two values inside the same uint8 bucket map identically.
        a = to_model_input(ImageBuffer.full(32, 32, 0.5))
        b = to_model_input(ImageBuffer.full(32, 32, 0.5 + 1e-4))
        assert np.array_equal(a, b)

    def test_multiple_images(self):
        imgs = [ImageBuffer.full(48, 48, v) for v in (0.1, 0.9)]
        x = to_model_input(imgs)
        assert x.shape[0] == 2
        assert x[0].mean() < x[1].mean()


class TestMinibatches:
    def test_covers_all_data(self):
        x = np.arange(10)[:, None]
        y = np.arange(10)
        seen = []
        for xb, yb in iterate_minibatches(x, y, 3):
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(10))

    def test_shuffle_changes_order(self):
        x = np.arange(32)[:, None]
        y = np.arange(32)
        ordered = [yb for _, yb in iterate_minibatches(x, y, 8)]
        shuffled = [
            yb
            for _, yb in iterate_minibatches(x, y, 8, np.random.default_rng(0))
        ]
        assert not all(
            np.array_equal(a, b) for a, b in zip(ordered, shuffled)
        )


class TestFit:
    def test_loss_decreases_on_separable_data(self):
        rng = np.random.default_rng(0)
        model = micro_mobilenet(num_classes=2, seed=0)
        # Two trivially separable classes: bright vs dark images.
        x = np.concatenate(
            [
                np.full((10, 3, 32, 32), 0.8, dtype=np.float32),
                np.full((10, 3, 32, 32), -0.8, dtype=np.float32),
            ]
        )
        x += rng.normal(0, 0.05, x.shape).astype(np.float32)
        y = np.array([0] * 10 + [1] * 10)
        losses = fit(
            model,
            Adam(model.trainable_layers(), lr=3e-3),
            x,
            y,
            TrainConfig(epochs=6, batch_size=10, seed=0),
        )
        assert losses[-1] < losses[0]
        assert evaluate_accuracy(model, x, y) == 1.0

    def test_length_mismatch(self):
        model = micro_mobilenet(num_classes=2, seed=0)
        with pytest.raises(ValueError):
            fit(
                model,
                Adam(model.trainable_layers()),
                np.zeros((3, 3, 32, 32), dtype=np.float32),
                np.zeros(2, dtype=np.int64),
                TrainConfig(epochs=1),
            )

    def test_epoch_callback(self):
        model = micro_mobilenet(num_classes=2, seed=0)
        calls = []
        fit(
            model,
            Adam(model.trainable_layers()),
            np.zeros((4, 3, 32, 32), dtype=np.float32),
            np.array([0, 1, 0, 1]),
            TrainConfig(
                epochs=2,
                batch_size=4,
                on_epoch_end=lambda e, l, a: calls.append((e, l, a)),
            ),
        )
        assert [c[0] for c in calls] == [0, 1]


class TestPretrainedConfig:
    def test_cache_key_stable_and_distinct(self):
        from repro.nn.pretrained import PretrainConfig

        a = PretrainConfig()
        b = PretrainConfig()
        c = PretrainConfig(epochs=a.epochs + 1)
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != c.cache_key()

    def test_render_training_set_shapes(self):
        from repro.nn.pretrained import PretrainConfig, render_training_set

        cfg = PretrainConfig(per_class=1, scenes_per_object=1)
        x, y = render_training_set(cfg)
        assert x.shape == (8, 3, 32, 32)  # 8 classes x 1 object x 1 scene
        assert set(y.tolist()) == set(range(8))
